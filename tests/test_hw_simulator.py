"""Tests for the analytical chip simulator."""

from __future__ import annotations

import pytest

from repro.hw.program import (
    AllToAllStep,
    ComputeStep,
    DeviceProgram,
    HBMTransferStep,
    LoadStoreStep,
    SetupStep,
    ShiftStep,
    SyncStep,
)
from repro.hw.simulator import ChipSimulator


@pytest.fixture()
def sim(small_chip):
    return ChipSimulator(small_chip)


class TestComputeTiming:
    def test_includes_launch_overhead(self, sim, small_chip):
        time = sim.compute_task_time("matmul", {"m": 1, "k": 1, "n": 1}, flops=2, bytes_accessed=6)
        assert time >= small_chip.compute_launch_overhead

    def test_monotonic_in_flops(self, sim):
        small = sim.compute_task_time("matmul", {"m": 8, "k": 8, "n": 8}, 1e3, 1024)
        large = sim.compute_task_time("matmul", {"m": 8, "k": 8, "n": 8}, 1e6, 1024)
        assert large > small

    def test_monotonic_in_bytes(self, sim):
        small = sim.compute_task_time("matmul", {"m": 8, "k": 8, "n": 8}, 1e4, 1024)
        large = sim.compute_task_time("matmul", {"m": 8, "k": 8, "n": 8}, 1e4, 10 * 1024 * 1024)
        assert large > small

    def test_alignment_preference(self, sim, small_chip):
        aligned = sim.compute_task_time(
            "matmul", {"m": 8, "k": 8, "n": small_chip.vector_width}, 1e5, 1024
        )
        misaligned = sim.compute_task_time("matmul", {"m": 8, "k": 8, "n": 1}, 1e5, 1024)
        assert aligned < misaligned

    def test_conv_blackbox_deterministic(self, sim):
        shape = {"b": 1, "f": 8, "c": 8, "h": 8, "w": 8, "kh": 3, "kw": 3}
        assert sim.compute_task_time("conv2d", shape, 1e5, 1024) == sim.compute_task_time(
            "conv2d", shape, 1e5, 1024
        )

    def test_conv_slower_than_matmul_at_same_flops(self, sim):
        shape = {"m": 8, "k": 8, "n": 64}
        conv_shape = {"b": 1, "f": 8, "c": 8, "h": 8, "w": 64, "kh": 1, "kw": 1}
        assert sim.compute_task_time("conv2d", conv_shape, 1e5, 1024) >= sim.compute_task_time(
            "matmul", shape, 1e5, 1024
        )


class TestCommunicationTiming:
    def test_shift_scales_with_bytes(self, sim):
        assert sim.shift_time_per_step(10**6) > sim.shift_time_per_step(10**3)

    def test_contention_slows_shift(self, sim):
        assert sim.shift_time_per_step(10**5, contention=2.0) > sim.shift_time_per_step(10**5)

    def test_loadstore_fan_in(self, sim):
        assert sim.loadstore_time_per_step(10**5, fan_in=3.0) > sim.loadstore_time_per_step(10**5)

    def test_alltoall_spreads_over_cores(self, sim):
        few = sim.alltoall_time(10**6, cores_used=2)
        many = sim.alltoall_time(10**6, cores_used=64)
        assert many < few

    def test_offchip_zero_for_empty(self, sim):
        assert sim.offchip_time(0) == 0.0

    def test_offchip_bandwidth(self, sim, small_chip):
        assert sim.offchip_time(small_chip.offchip_bandwidth) == pytest.approx(1.0)


class TestProgramExecution:
    def test_aggregates_categories(self, sim):
        program = DeviceProgram(name="p")
        program.add(ComputeStep("op", "matmul", {"m": 4}, 1e4, 128, cores_used=4, count=3))
        program.add(ShiftStep("op", "A", bytes_per_core=1024, cores_used=4, count=2))
        program.add(LoadStoreStep("op", bytes_per_core=2048, cores_used=4, fan_in=2.0))
        program.add(AllToAllStep("op", total_bytes=4096, cores_used=4))
        program.add(SetupStep("op", bytes_per_core=512, cores_used=4))
        program.add(HBMTransferStep("op", total_bytes=8192))
        program.add(SyncStep("op"))
        result = sim.run(program)
        assert result.ok
        assert result.compute_time > 0
        assert result.shift_time > 0
        assert result.loadstore_time > 0
        assert result.alltoall_time > 0
        assert result.setup_time > 0
        assert result.offchip_time > 0
        assert result.sync_time > 0
        assert result.total_time == pytest.approx(
            result.compute_time
            + result.intercore_time
            + result.offchip_time
            + result.sync_time
        )

    def test_step_counts_multiply(self, sim):
        single = DeviceProgram(name="single")
        single.add(ComputeStep("op", "matmul", {"m": 4}, 1e4, 128, cores_used=4, count=1))
        triple = DeviceProgram(name="triple")
        triple.add(ComputeStep("op", "matmul", {"m": 4}, 1e4, 128, cores_used=4, count=3))
        assert sim.run(triple).compute_time == pytest.approx(3 * sim.run(single).compute_time)

    def test_per_op_breakdown(self, sim):
        program = DeviceProgram(name="p")
        program.add(ComputeStep("a", "matmul", {"m": 4}, 1e4, 128, cores_used=4))
        program.add(ComputeStep("b", "matmul", {"m": 4}, 1e4, 128, cores_used=4))
        result = sim.run(program)
        assert set(result.per_op) == {"a", "b"}
        assert result.op_timing("a").compute > 0
        assert result.op_timing("missing").total == 0.0

    def test_oom_detection(self, sim, small_chip):
        program = DeviceProgram(name="p")
        program.record_op_memory("op", small_chip.sram_per_core + 1)
        program.add(ComputeStep("op", "matmul", {"m": 4}, 1e4, 128, cores_used=4))
        result = sim.run(program)
        assert not result.ok
        assert result.status == "oom"

    def test_oom_check_can_be_disabled(self, sim, small_chip):
        program = DeviceProgram(name="p")
        program.record_op_memory("op", small_chip.sram_per_core + 1)
        program.add(ComputeStep("op", "matmul", {"m": 4}, 1e4, 128, cores_used=4))
        assert sim.run(program, check_memory=False).ok

    def test_bandwidth_utilization_below_link_rate(self, sim, small_chip):
        program = DeviceProgram(name="p")
        program.add(ShiftStep("op", "A", bytes_per_core=64 * 1024, cores_used=4, count=8))
        result = sim.run(program)
        assert 0 < result.bandwidth_utilization <= small_chip.link_bandwidth

    def test_comm_fraction_bounds(self, sim):
        program = DeviceProgram(name="p")
        program.add(ComputeStep("op", "matmul", {"m": 4}, 1e5, 128, cores_used=4))
        program.add(ShiftStep("op", "A", bytes_per_core=1024, cores_used=4))
        result = sim.run(program)
        assert 0.0 < result.comm_fraction < 1.0
