"""Fleet-scale chaos tests (repro.serving.fleet + repro.serving.faults).

The single-engine chaos mechanics live in test_faults.py; this file covers
the fleet-specific robustness layer: health-aware routing around dead
replicas, cross-model failover of requeued requests, per-tenant retry
budgets with deadline-aware honest drops, brownout admission control, and
per-chip-group link degradation.  A seeded Hypothesis harness replays
randomized fault schedules and asserts the structural invariants — the
books balance, nothing is stranded, retry budgets bound per-tenant spend,
and every replay is deterministic.
"""

from __future__ import annotations

from dataclasses import replace

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import T10Compiler
from repro.ir import OperatorGraph, elementwise, matmul
from repro.serving import (
    DECODE_SHED,
    SLO_BEST_EFFORT,
    SLO_INTERACTIVE,
    DecodeModel,
    DecodeRequest,
    FaultSchedule,
    FleetEngine,
    PlanCache,
    TenantSpec,
    Watchdog,
    chip_death,
    group_link_degradation,
    link_degradation,
    restart,
)


def tiny_builder(name: str, width: int):
    def build(batch_size: int) -> OperatorGraph:
        graph = OperatorGraph(name=f"{name}-b{batch_size}")
        fc1 = graph.add(matmul("fc1", m=batch_size * 8, k=width, n=width))
        act = graph.add(
            elementwise("act", {"m": batch_size * 8, "n": width}, kind="relu"),
            inputs=[fc1],
        )
        graph.add(matmul("fc2", m=batch_size * 8, k=width, n=32), inputs=[act])
        return graph

    return build


def make_model(name: str = "alpha", *, width: int = 64) -> DecodeModel:
    return DecodeModel(
        name=name,
        decode_builder=tiny_builder(name, width),
        max_batch_size=2,
        prefill_chunk=64,
    )


@pytest.fixture(scope="module")
def cache(small_cost_model, fast_constraints):
    # Module-scoped: every engine in this file (including each Hypothesis
    # example) shares one warm plan cache, so chaos replays cost no
    # recompilation after the first run.
    store = PlanCache(
        compiler_factory=lambda chip, constraints: T10Compiler(
            chip, cost_model=small_cost_model, constraints=constraints
        ),
    )
    yield store
    store.close()


def make_engine(cache, small_chip, fast_constraints, **kwargs) -> FleetEngine:
    deployments = kwargs.pop("deployments", None) or [
        make_model("alpha"),
        make_model("beta", width=96),
    ]
    return FleetEngine(
        deployments,
        chip=small_chip,
        constraints=fast_constraints,
        plan_cache=cache,
        tenants=kwargs.pop(
            "tenants", [TenantSpec("acme"), TenantSpec("globex")]
        ),
        **kwargs,
    )


def request(
    request_id: int,
    arrival: float,
    *,
    model: str = "alpha",
    tokens: int = 4,
    prompt: int = 16,
    slo_class: str = SLO_INTERACTIVE,
    deadline: float | None = None,
    tenant: str = "acme",
) -> DecodeRequest:
    return DecodeRequest(
        request_id=request_id,
        model=model,
        arrival_time=arrival,
        prompt_tokens=prompt,
        max_new_tokens=tokens,
        slo_class=slo_class,
        deadline=deadline,
        tenant=tenant,
    )


def assert_books_balance(report, workload) -> None:
    """Every request ends as exactly one record: served or honestly shed."""
    assert report.total_completed + report.shed == len(workload)
    assert sorted(r.request.request_id for r in report.completed) == sorted(
        r.request_id for r in workload
    )


# --------------------------------------------------------------------------- #
# Watchdog edge cases on the fleet engine
# --------------------------------------------------------------------------- #
class TestFleetWatchdogEdges:
    def test_death_failover_and_tenant_slices(
        self, cache, small_chip, fast_constraints
    ):
        engine = make_engine(cache, small_chip, fast_constraints, num_chips=2)
        engine.warm()
        unit = engine.iteration_latency("alpha")
        workload = [
            request(0, 0.0, tokens=24, tenant="acme"),
            request(1, 0.0, model="beta", tokens=2, tenant="globex"),
        ]
        schedule = FaultSchedule.kill_and_restart(0, at=3 * unit, downtime=6 * unit)
        report = make_engine(cache, small_chip, fast_constraints, num_chips=2).run(
            workload, faults=schedule, watchdog=Watchdog(detection_delay=unit)
        )
        assert_books_balance(report, workload)
        stats = report.faults
        assert stats.chip_deaths == 1
        assert stats.restarts == 1
        assert stats.requeued + stats.retry_drops >= 1
        # Satellite: per-request fault accounting slices exactly per tenant.
        slices = report.per_tenant()
        assert sum(s.faults.requeued for s in slices.values()) == stats.requeued
        assert sum(s.faults.lost_tokens for s in slices.values()) == stats.lost_tokens
        assert sum(s.migrations for s in slices.values()) == report.migrations
        # Fleet-level mechanism counters are zeroed in slices, not divided.
        assert all(s.faults.chip_deaths == 0 for s in slices.values())

    def test_death_at_detection_boundary(self, cache, small_chip, fast_constraints):
        """detection_delay=0: the watchdog fires at the death instant and the
        requeue happens in the same virtual moment, after the death settles."""
        engine = make_engine(cache, small_chip, fast_constraints, num_chips=2)
        engine.warm()
        unit = engine.iteration_latency("alpha")
        workload = [request(0, 0.0, tokens=20)]
        report = make_engine(cache, small_chip, fast_constraints, num_chips=2).run(
            workload,
            faults=FaultSchedule.kill_and_restart(0, at=2.5 * unit, downtime=4 * unit),
            watchdog=Watchdog(detection_delay=0.0),
        )
        assert_books_balance(report, workload)
        assert report.faults.chip_deaths == 1
        assert report.faults.requeued == 1
        record = report.completed[0]
        assert record.ok and record.requeues == 1

    def test_second_death_during_restart_is_idempotent(
        self, cache, small_chip, fast_constraints
    ):
        """A chip reported dead again while its restart warms up is a no-op:
        the chip is still in the dead set, so the fleet counts one death and
        the chip comes online at the originally scheduled time."""
        engine = make_engine(cache, small_chip, fast_constraints, num_chips=2)
        engine.warm()
        unit = engine.iteration_latency("alpha")
        workload = [request(0, 0.0, tokens=24)]
        schedule = FaultSchedule.of(
            [
                chip_death(2 * unit, 0),
                restart(6 * unit, 0, warmup_delay=3 * unit),
                # Fires mid-warmup (between restart and chip-online).
                chip_death(7 * unit, 0),
            ]
        )
        report = make_engine(cache, small_chip, fast_constraints, num_chips=2).run(
            workload, faults=schedule, watchdog=Watchdog(detection_delay=unit)
        )
        assert_books_balance(report, workload)
        assert report.faults.chip_deaths == 1
        assert report.faults.restarts == 1
        assert report.completed[0].ok

    def test_fault_after_last_arrival_changes_nothing_served(
        self, cache, small_chip, fast_constraints
    ):
        engine = make_engine(cache, small_chip, fast_constraints, num_chips=2)
        engine.warm()
        workload = [request(i, 0.0, tokens=2) for i in range(4)]
        clean = make_engine(cache, small_chip, fast_constraints, num_chips=2).run(
            workload
        )
        late = make_engine(cache, small_chip, fast_constraints, num_chips=2).run(
            workload,
            faults=FaultSchedule.of([chip_death(1e3, 0)]),
            watchdog=Watchdog(detection_delay=1.0),
        )
        # The kill lands long after the fleet drained: it is counted, but no
        # request is touched and every served record matches the clean run.
        assert late.faults.chip_deaths == 1
        assert late.faults.requeued == 0 and late.faults.retry_drops == 0
        assert repr(late.completed) == repr(clean.completed)

    def test_all_replicas_dead_sheds_instead_of_stranding(
        self, cache, small_chip, fast_constraints
    ):
        engine = make_engine(cache, small_chip, fast_constraints, num_chips=2)
        engine.warm()
        unit = engine.iteration_latency("alpha")
        workload = [
            request(i, 0.0, tokens=12, model="alpha" if i % 2 == 0 else "beta")
            for i in range(6)
        ]
        report = make_engine(cache, small_chip, fast_constraints, num_chips=2).run(
            workload,
            faults=FaultSchedule.of(
                [chip_death(1.5 * unit, 0), chip_death(1.5 * unit, 1)]
            ),
            watchdog=Watchdog(detection_delay=unit),
        )
        # No survivor, no restart: everything unfinished is shed honestly —
        # a record per request, none stranded in a dead replica's queue.
        assert_books_balance(report, workload)
        assert report.faults.chip_deaths == 2
        assert report.faults.failovers == 0
        assert report.shed > 0
        for record in report.completed:
            assert record.ok or record.status == DECODE_SHED


# --------------------------------------------------------------------------- #
# Fleet-scale degraded-mode policies
# --------------------------------------------------------------------------- #
class TestDegradedModePolicies:
    def test_retry_budget_zero_drops_honestly(
        self, cache, small_chip, fast_constraints
    ):
        engine = make_engine(cache, small_chip, fast_constraints, num_chips=2)
        engine.warm()
        unit = engine.iteration_latency("alpha")
        workload = [request(0, 0.0, tokens=24)]
        report = make_engine(cache, small_chip, fast_constraints, num_chips=2).run(
            workload,
            faults=FaultSchedule.kill_and_restart(0, at=3 * unit, downtime=6 * unit),
            watchdog=Watchdog(detection_delay=unit, retry_budget=0),
        )
        assert_books_balance(report, workload)
        assert report.faults.retry_drops == 1
        assert report.faults.requeued == 0
        record = report.completed[0]
        assert record.status == DECODE_SHED
        # The record keeps only requeues that bought another attempt.
        assert record.requeues == 0

    def test_requeue_past_deadline_drops_regardless_of_budget(
        self, cache, small_chip, fast_constraints
    ):
        engine = make_engine(cache, small_chip, fast_constraints, num_chips=2)
        engine.warm()
        unit = engine.iteration_latency("alpha")
        # Feasible at arrival (24 tokens in ~25 units fits 40), but a late
        # kill forces a full re-prefill that cannot finish by the deadline.
        workload = [request(0, 0.0, tokens=24, deadline=40 * unit)]
        report = make_engine(cache, small_chip, fast_constraints, num_chips=2).run(
            workload,
            faults=FaultSchedule.kill_and_restart(0, at=20 * unit, downtime=60 * unit),
            watchdog=Watchdog(detection_delay=unit, retry_budget=10),
        )
        assert_books_balance(report, workload)
        assert report.faults.retry_drops == 1
        assert report.completed[0].status == DECODE_SHED

    def test_brownout_sheds_best_effort_at_arrival(
        self, cache, small_chip, fast_constraints
    ):
        engine = make_engine(cache, small_chip, fast_constraints, num_chips=2)
        engine.warm()
        unit = engine.iteration_latency("alpha")
        # Half the best-effort stream arrives while chip 0 is down and the
        # surviving capacity (1/2) sits below the watermark.
        workload = [request(0, 0.0, tokens=4)] + [
            request(
                10 + i,
                (4 + i) * unit,
                tokens=2,
                slo_class=SLO_BEST_EFFORT if i % 2 == 0 else SLO_INTERACTIVE,
            )
            for i in range(6)
        ]
        report = make_engine(cache, small_chip, fast_constraints, num_chips=2).run(
            workload,
            faults=FaultSchedule.kill_and_restart(0, at=3 * unit, downtime=30 * unit),
            watchdog=Watchdog(detection_delay=unit, brownout_watermark=0.75),
        )
        assert_books_balance(report, workload)
        assert report.faults.brownout_sheds > 0
        # Brownout never sheds interactive work at arrival: every record
        # shed without ever being admitted is best-effort.
        for record in report.completed:
            if record.status == DECODE_SHED and record.requeues == 0:
                assert record.request.slo_class == SLO_BEST_EFFORT

    def test_cross_model_failover_migrates_to_other_binding(
        self, cache, small_chip, fast_constraints
    ):
        """A dead replica's requeued request may land on a replica of a
        different binding: the idle beta replica takes the displaced alpha
        request (full re-prefill) instead of waiting out the downtime."""
        engine = make_engine(cache, small_chip, fast_constraints, num_chips=2)
        engine.warm()
        unit = engine.iteration_latency("alpha")
        workload = [
            # Binds replica 0 to beta, drains quickly, leaves it idle.
            request(0, 0.0, model="beta", tokens=2, tenant="globex"),
            # In flight on replica 1 when the kill lands.
            request(1, 0.0, tokens=24, tenant="acme"),
        ]
        report = make_engine(cache, small_chip, fast_constraints, num_chips=2).run(
            workload,
            faults=FaultSchedule.kill_and_restart(1, at=6 * unit, downtime=40 * unit),
            watchdog=Watchdog(detection_delay=unit),
        )
        assert_books_balance(report, workload)
        assert report.faults.requeued == 1
        assert report.migrations == 1
        record = next(r for r in report.completed if r.request.request_id == 1)
        assert record.ok
        assert record.migrations == 1
        # The migration shows up in the owning tenant's slice alone.
        assert report.tenant_slice("acme").migrations == 1
        assert report.tenant_slice("globex").migrations == 0

    def test_group_link_degradation_scopes_to_chip_set(
        self, cache, small_chip, fast_constraints
    ):
        """A degradation window keyed to one chip group taxes only replicas
        backed by those chips — so the health-aware router steers traffic to
        the clean group at no makespan cost, while an unscoped (fleet-wide)
        window leaves nowhere to hide."""
        workload = [request(i, 0.0, tokens=6) for i in range(3)]

        def run(schedule=None):
            engine = make_engine(
                cache,
                small_chip,
                fast_constraints,
                deployments=[make_model("alpha")],
                num_chips=2,
            )
            engine.warm()
            return engine.run(
                workload, faults=schedule, watchdog=Watchdog() if schedule else None
            )

        clean = run()
        served_on = {r.replica for r in clean.ok_requests}
        assert served_on  # the workload lands on at least one replica
        target = min(served_on)
        other = 1 - target
        rerouted = run(
            FaultSchedule.of([group_link_degradation(0.0, 1e9, 8.0, [target])])
        )
        untouched = run(
            FaultSchedule.of([group_link_degradation(0.0, 1e9, 8.0, [other])])
        )
        fleet_wide = run(FaultSchedule.of([link_degradation(0.0, 1e9, 8.0)]))
        # Degrading the serving group moves every request onto the clean
        # group's replica at full speed.
        assert {r.replica for r in rerouted.ok_requests} == {other}
        assert rerouted.makespan == clean.makespan
        # Degrading the idle group changes nothing at all.
        assert {r.replica for r in untouched.ok_requests} == {target}
        assert untouched.makespan == clean.makespan
        # An unscoped window is fleet-wide: no clean group exists, so the
        # degradation tax lands in full.
        assert fleet_wide.makespan > clean.makespan


# --------------------------------------------------------------------------- #
# Randomized chaos harness (seeded, deterministic per example)
# --------------------------------------------------------------------------- #
@st.composite
def fault_plans(draw, num_chips: int = 2):
    """An abstract fault plan in iteration-latency units; the test scales it
    to virtual seconds once the engine's unit price is known."""
    deaths = draw(
        st.lists(
            st.tuples(
                st.floats(0.5, 12.0),
                st.integers(0, num_chips - 1),
                st.one_of(st.none(), st.floats(1.0, 6.0)),  # downtime
                st.floats(0.0, 2.0),  # warmup
                st.booleans(),  # cold cache
            ),
            max_size=3,
        )
    )
    links = draw(
        st.lists(
            st.tuples(
                st.floats(0.0, 10.0),  # start
                st.floats(0.5, 5.0),  # length
                st.floats(1.0, 8.0),  # factor
                st.sets(st.integers(0, num_chips - 1)),  # chip scope ({} = fleet)
            ),
            max_size=2,
        )
    )
    budget = draw(st.one_of(st.none(), st.integers(0, 3)))
    return deaths, links, budget


def build_schedule(plan, unit: float) -> FaultSchedule:
    deaths, links, _ = plan
    events = []
    for at, chip, downtime, warmup, cold in deaths:
        events.append(chip_death(at * unit, chip))
        if downtime is not None:
            events.append(
                restart(
                    (at + downtime) * unit,
                    chip,
                    cold_cache=cold,
                    warmup_delay=warmup * unit,
                )
            )
    for start, length, factor, chips in links:
        if chips:
            events.append(
                group_link_degradation(
                    start * unit, (start + length) * unit, factor, sorted(chips)
                )
            )
        else:
            events.append(
                link_degradation(start * unit, (start + length) * unit, factor)
            )
    return FaultSchedule.of(events)


@settings(max_examples=12, deadline=None)
@given(plan=fault_plans())
def test_chaos_invariants_hold_for_any_schedule(
    plan, cache, small_chip, fast_constraints
):
    """Structural invariants of the fleet under arbitrary fault schedules:
    the books balance, nothing is stranded, per-tenant requeues respect the
    retry budget, and the replay is deterministic."""
    probe = make_engine(cache, small_chip, fast_constraints, num_chips=2)
    probe.warm()
    unit = probe.iteration_latency("alpha")
    schedule = build_schedule(plan, unit)
    budget = plan[2]
    watchdog = Watchdog(
        detection_delay=0.5 * unit,
        degraded_shed_queue=2,
        retry_budget=budget,
        brownout_watermark=0.75,
    )
    workload = [
        request(
            i,
            (i % 8) * 0.75 * unit,
            model="alpha" if i % 3 else "beta",
            tokens=3 + (i % 4) * 4,
            slo_class=SLO_BEST_EFFORT if i % 4 == 3 else SLO_INTERACTIVE,
            deadline=None if i % 4 == 3 else (i % 8) * 0.75 * unit + 30 * unit,
            tenant="acme" if i % 2 == 0 else "globex",
        )
        for i in range(12)
    ]

    def run():
        return make_engine(cache, small_chip, fast_constraints, num_chips=2).run(
            workload, faults=schedule, watchdog=watchdog
        )

    report = run()
    # Books balance and nothing is stranded: one record per request.
    assert_books_balance(report, workload)
    # Retry budgets bound per-tenant spend: a record's requeue count only
    # grows when the tenant's budget paid for the retry.
    if budget is not None:
        for tenant_slice in report.per_tenant().values():
            spent = sum(rec.requeues for rec in tenant_slice.completed)
            assert spent <= budget
    # Fault books agree with the schedule: a kill of an already-dead chip is
    # idempotent, so counted deaths never exceed the scheduled kill events
    # (a restarted chip can legitimately die a second time).
    assert report.faults.chip_deaths <= len(plan[0])
    assert report.faults.requeued >= 0 and report.faults.lost_tokens >= 0
    # Deterministic replay: the same schedule over the same workload gives a
    # bit-identical report (repr-compare — shed records carry NaN fields).
    again = run()
    assert repr(report.completed) == repr(again.completed)
    assert replace(report.faults, restart_compile_seconds=0.0) == replace(
        again.faults, restart_compile_seconds=0.0
    )
    assert report.migrations == again.migrations
    assert report.makespan == again.makespan
