"""Tests for the model-serving subsystem (plan cache, batcher, pool, scheduler)."""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import T10Compiler
from repro.ir import OperatorGraph, elementwise, matmul
from repro.serving import (
    COMPILE,
    HIT_DISK,
    HIT_MEMORY,
    DynamicBatcher,
    InferenceRequest,
    PlanCache,
    ServedModel,
    ServingScheduler,
    WorkerPool,
    batch_buckets,
    bucket_for,
    merge_workloads,
    plan_key,
    poisson_workload,
    uniform_workload,
)


def build_tiny(batch_size: int, *, width: int = 64) -> OperatorGraph:
    """A three-operator MLP-ish graph scaled by batch size."""
    graph = OperatorGraph(name=f"tiny-b{batch_size}")
    fc1 = graph.add(matmul("fc1", m=batch_size * 8, k=width, n=width))
    act = graph.add(
        elementwise("act", {"m": batch_size * 8, "n": width}, kind="relu"),
        inputs=[fc1],
    )
    graph.add(matmul("fc2", m=batch_size * 8, k=width, n=32), inputs=[act])
    return graph


@pytest.fixture()
def cache(small_cost_model, fast_constraints, tmp_path):
    """A disk-backed plan cache compiling with the shared test cost model."""
    return PlanCache(
        tmp_path / "plans",
        compiler_factory=lambda chip, constraints: T10Compiler(
            chip, cost_model=small_cost_model, constraints=constraints
        ),
    )


# --------------------------------------------------------------------------- #
# Plan cache
# --------------------------------------------------------------------------- #
class TestPlanCache:
    def test_compile_once_then_memory_hits(self, cache, small_chip, fast_constraints):
        graph = build_tiny(1)
        first = cache.get_or_compile(graph, small_chip, fast_constraints)
        assert first.outcome == COMPILE
        assert first.compiled.ok
        second = cache.get_or_compile(build_tiny(1), small_chip, fast_constraints)
        assert second.outcome == HIT_MEMORY
        assert second.compiled is first.compiled
        assert cache.stats.misses == 1
        assert cache.stats.hits_memory == 1
        assert cache.stats.hit_rate == 0.5

    def test_disk_tier_survives_new_cache_instance(
        self, cache, small_chip, small_cost_model, fast_constraints, tmp_path
    ):
        graph = build_tiny(2)
        cache.get_or_compile(graph, small_chip, fast_constraints)
        reopened = PlanCache(
            tmp_path / "plans",
            compiler_factory=lambda chip, constraints: T10Compiler(
                chip, cost_model=small_cost_model, constraints=constraints
            ),
        )
        lookup = reopened.get_or_compile(build_tiny(2), small_chip, fast_constraints)
        assert lookup.outcome == HIT_DISK
        assert lookup.compiled.ok
        assert reopened.stats.misses == 0
        # Promoted to the memory tier on the way in.
        again = reopened.get_or_compile(build_tiny(2), small_chip, fast_constraints)
        assert again.outcome == HIT_MEMORY

    def test_corrupt_disk_entry_is_a_miss(
        self, cache, small_chip, fast_constraints, tmp_path
    ):
        graph = build_tiny(1)
        lookup = cache.get_or_compile(graph, small_chip, fast_constraints)
        path = tmp_path / "plans" / f"{lookup.key}.plan.pkl"
        assert path.exists()
        path.write_bytes(b"not a pickle")
        fresh = PlanCache(tmp_path / "plans", compiler_factory=cache._compiler_factory)
        relookup = fresh.get_or_compile(graph, small_chip, fast_constraints)
        assert relookup.outcome == COMPILE
        assert relookup.compiled.ok

    def test_key_distinguishes_chip_and_constraints(
        self, small_chip, tiny_chip, fast_constraints
    ):
        graph = build_tiny(1)
        assert plan_key(graph, small_chip, fast_constraints) != plan_key(
            graph, tiny_chip, fast_constraints
        )
        relaxed = fast_constraints.relaxed(max_plans=123)
        assert plan_key(graph, small_chip, fast_constraints) != plan_key(
            graph, small_chip, relaxed
        )

    def test_concurrent_misses_compile_once(self, cache, small_chip, fast_constraints):
        graph = build_tiny(4)
        with ThreadPoolExecutor(max_workers=8) as pool:
            lookups = list(
                pool.map(
                    lambda _: cache.get_or_compile(graph, small_chip, fast_constraints),
                    range(8),
                )
            )
        assert cache.stats.misses == 1
        assert sum(1 for lookup in lookups if lookup.outcome == COMPILE) == 1
        assert len({id(lookup.compiled) for lookup in lookups}) == 1

    def test_warm_compiles_in_parallel(self, cache, small_chip, fast_constraints):
        graphs = [build_tiny(size) for size in (1, 2, 4, 8)]
        lookups = cache.warm(graphs, small_chip, fast_constraints)
        assert [lookup.outcome for lookup in lookups] == [COMPILE] * 4
        assert len(cache) == 4

    def test_stats_snapshot_and_since(self, cache, small_chip, fast_constraints):
        cache.get_or_compile(build_tiny(1), small_chip, fast_constraints)
        before = cache.stats.snapshot()
        cache.get_or_compile(build_tiny(1), small_chip, fast_constraints)
        delta = cache.stats.since(before)
        assert delta.misses == 0
        assert delta.hits_memory == 1
        assert delta.hit_rate == 1.0

    def test_cross_tenant_sharing_compiles_once(
        self, cache, small_chip, fast_constraints
    ):
        """Two tenants with the same plan fingerprint share one program: the
        first tenant attributes the compile, the second a pure warm hit."""
        first = cache.get_or_compile(
            build_tiny(1), small_chip, fast_constraints, tenant="acme"
        )
        second = cache.get_or_compile(
            build_tiny(1), small_chip, fast_constraints, tenant="globex"
        )
        assert first.outcome == COMPILE
        assert second.outcome == HIT_MEMORY
        assert second.compiled is first.compiled
        assert cache.stats.misses == 1
        acme, globex = cache.tenant_stats("acme"), cache.tenant_stats("globex")
        assert (acme.misses, acme.hits) == (1, 0)
        assert (globex.misses, globex.hits) == (0, 1)
        assert set(cache.tenants) == {"acme", "globex"}

    def test_evicting_one_tenants_scope_keeps_the_shared_plan(
        self, cache, small_chip, fast_constraints
    ):
        """A tenant's cold-restart namespace is scoped; dropping it must not
        evict the unscoped plan every tenant shares by fingerprint."""
        shared = cache.get_or_compile(
            build_tiny(1), small_chip, fast_constraints, tenant="acme"
        )
        scoped = cache.get_or_compile(
            build_tiny(1),
            small_chip,
            fast_constraints,
            scope="acme-restart-gen1",
            tenant="acme",
        )
        assert scoped.key != shared.key
        dropped = cache.evict_scope("acme-restart-gen1")
        assert dropped == 1
        # The shared entry is untouched: globex still gets a warm hit.
        relookup = cache.get_or_compile(
            build_tiny(1), small_chip, fast_constraints, tenant="globex"
        )
        assert relookup.outcome == HIT_MEMORY
        assert relookup.compiled is shared.compiled
        assert cache.tenant_stats("globex").hits == 1


# --------------------------------------------------------------------------- #
# Dynamic batcher
# --------------------------------------------------------------------------- #
class TestDynamicBatcher:
    def test_buckets_are_powers_of_two_up_to_max(self):
        assert batch_buckets(8) == (1, 2, 4, 8)
        assert batch_buckets(6) == (1, 2, 4, 6)
        assert batch_buckets(1) == (1,)
        assert bucket_for(3, 8) == 4
        assert bucket_for(8, 8) == 8
        with pytest.raises(ValueError):
            bucket_for(9, 8)

    def test_bucket_for_edge_cases(self):
        # A batch of one always fits the smallest bucket.
        assert bucket_for(1, 1) == 1
        assert bucket_for(1, 8) == 1
        # Exact powers of two map onto themselves, not the next bucket up.
        assert bucket_for(2, 8) == 2
        assert bucket_for(4, 8) == 4
        # A non-power-of-two cap is its own (largest) bucket.
        assert bucket_for(5, 6) == 6
        # Empty and negative batches have no bucket to run on; regression:
        # batch_size=0 used to silently map to bucket 1.
        with pytest.raises(ValueError, match="batch_size"):
            bucket_for(0, 8)
        with pytest.raises(ValueError, match="batch_size"):
            bucket_for(-1, 8)
        # Overflow states the limit in the error instead of falling through.
        with pytest.raises(ValueError, match="max_batch_size=4"):
            bucket_for(5, 4)

    def test_batch_buckets_rejects_non_positive_max(self):
        with pytest.raises(ValueError):
            batch_buckets(0)
        with pytest.raises(ValueError):
            batch_buckets(-3)

    def test_full_batch_closes_immediately(self):
        batcher = DynamicBatcher(max_batch_size=4, batch_window=1.0)
        requests = [InferenceRequest(i, "m", 0.001 * i) for i in range(8)]
        batches = list(batcher.batches(requests))
        assert [len(batch) for batch in batches] == [4, 4]
        # Closed by the size trigger at the fourth arrival, not the window.
        assert batches[0].dispatch_time == pytest.approx(0.003)

    def test_window_flushes_partial_batch(self):
        batcher = DynamicBatcher(max_batch_size=8, batch_window=0.010)
        requests = [
            InferenceRequest(0, "m", 0.000),
            InferenceRequest(1, "m", 0.001),
            InferenceRequest(2, "m", 0.100),  # arrives after the window
        ]
        batches = list(batcher.batches(requests))
        assert [len(batch) for batch in batches] == [2, 1]
        assert batches[0].dispatch_time == pytest.approx(0.010)
        assert batches[0].padded_size == 2

    def test_models_batch_independently(self):
        batcher = DynamicBatcher(max_batch_size={"a": 2, "b": 8}, batch_window=0.5)
        requests = merge_workloads(
            uniform_workload(["a"], num_requests=4, interval=0.001),
            [InferenceRequest(100, "b", 0.0005)],
        )
        batches = list(batcher.batches(requests))
        by_model = {}
        for batch in batches:
            by_model.setdefault(batch.model, []).append(len(batch))
        assert by_model == {"a": [2, 2], "b": [1]}

    def test_queue_depth_is_sampled(self):
        batcher = DynamicBatcher(max_batch_size=8, batch_window=1.0)
        replay = batcher.batches(uniform_workload(["m"], num_requests=5, interval=0.0))
        list(replay)
        assert replay.stats.max_queue_depth == 5
        assert replay.stats.mean_queue_depth == pytest.approx(3.0)

    def test_replay_stats_are_local_to_each_replay(self):
        # Regression: stats used to live on the batcher and were only reset
        # when a new generator was first advanced, so a consumed replay's
        # numbers survived — and a created-but-unconsumed replay read stale
        # data from the previous one.
        batcher = DynamicBatcher(max_batch_size=8, batch_window=1.0)
        first = batcher.batches(uniform_workload(["m"], num_requests=5, interval=0.0))
        list(first)
        second = batcher.batches([])  # created but never consumed
        assert second.stats.max_queue_depth == 0
        assert second.stats.mean_queue_depth == 0.0
        # The consumed replay keeps its own numbers untouched.
        assert first.stats.max_queue_depth == 5
        assert first.stats.mean_queue_depth == pytest.approx(3.0)
        third = batcher.batches(uniform_workload(["m"], num_requests=2, interval=0.0))
        list(third)
        assert third.stats.max_queue_depth == 2
        assert first.stats.max_queue_depth == 5

    def test_empty_replay_yields_nothing_and_zero_stats(self):
        # An empty workload is a legal replay: no batches, and the stats
        # read as an idle queue rather than raising on empty samples.
        batcher = DynamicBatcher(max_batch_size=8, batch_window=1.0)
        replay = batcher.batches([])
        assert list(replay) == []
        assert replay.stats.queue_depth_samples == []
        assert replay.stats.max_queue_depth == 0
        assert replay.stats.mean_queue_depth == 0.0


# --------------------------------------------------------------------------- #
# Batcher properties (hypothesis)
# --------------------------------------------------------------------------- #
arrival_streams = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=10.0, allow_nan=False, allow_infinity=False),
        st.sampled_from(["a", "b", "c"]),
    ),
    max_size=50,
)


class TestBatcherProperties:
    @given(
        stream=arrival_streams,
        max_batch=st.integers(min_value=1, max_value=6),
        window=st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
    )
    @settings(deadline=None, max_examples=200)
    def test_batches_partition_requests_in_dispatch_order(
        self, stream, max_batch, window
    ):
        """Every request lands in exactly one batch; dispatch never rewinds."""
        requests = [
            InferenceRequest(request_id=i, model=model, arrival_time=arrival)
            for i, (arrival, model) in enumerate(stream)
        ]
        batcher = DynamicBatcher(max_batch_size=max_batch, batch_window=window)
        batches = list(batcher.batches(requests))

        batched_ids = [req.request_id for batch in batches for req in batch.requests]
        assert len(batched_ids) == len(set(batched_ids)), "a request was batched twice"
        assert sorted(batched_ids) == sorted(req.request_id for req in requests)

        dispatch_times = [batch.dispatch_time for batch in batches]
        assert all(
            earlier <= later
            for earlier, later in zip(dispatch_times, dispatch_times[1:])
        ), f"dispatch times rewound: {dispatch_times}"

        for batch in batches:
            assert 1 <= len(batch) <= batcher.max_batch_for(batch.model)
            assert batch.padded_size >= len(batch)
            # A batch never dispatches before its requests exist.
            assert batch.dispatch_time >= max(r.arrival_time for r in batch.requests)


# --------------------------------------------------------------------------- #
# Workload generators
# --------------------------------------------------------------------------- #
class TestWorkloads:
    def test_poisson_workload_is_deterministic_and_sorted(self):
        a = poisson_workload({"x": 100.0, "y": 50.0}, num_requests=60, seed=7)
        b = poisson_workload({"x": 100.0, "y": 50.0}, num_requests=60, seed=7)
        assert a == b
        assert len(a) == 60
        times = [req.arrival_time for req in a]
        assert times == sorted(times)
        assert [req.request_id for req in a] == list(range(60))
        assert {req.model for req in a} == {"x", "y"}

    def test_poisson_workload_count_is_exact_for_uneven_mixes(self):
        # Independent per-model rounding must not lose requests (a 3-way
        # even split used to yield 99 of 100).
        mix = {"a": 1.0, "b": 1.0, "c": 1.0}
        assert len(poisson_workload(mix, num_requests=100, seed=0)) == 100

    def test_poisson_workload_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            poisson_workload({"x": 0.0}, num_requests=10)
        with pytest.raises(ValueError):
            poisson_workload({"x": 1.0}, num_requests=0)

    def test_merge_workloads_renumbers_colliding_ids(self):
        # Regression: independent generators both number from 0, and the old
        # merge sorted by (arrival_time, original id) — requests with equal
        # keys tied arbitrarily and the duplicated ids corrupted per-request
        # accounting downstream.  The merge must renumber deterministically.
        a = poisson_workload({"x": 100.0}, num_requests=20, seed=1)
        b = poisson_workload({"y": 100.0}, num_requests=20, seed=1)
        assert {req.request_id for req in a} == {req.request_id for req in b}
        merged = merge_workloads(a, b)
        ids = [req.request_id for req in merged]
        assert ids == list(range(40))
        times = [req.arrival_time for req in merged]
        assert times == sorted(times)

    def test_merge_workloads_breaks_arrival_ties_by_stream_order(self):
        # Same seed, same rate: every arrival time collides pairwise.  Ties
        # must resolve to the order the streams were passed in, stably.
        a = poisson_workload({"x": 50.0}, num_requests=10, seed=3)
        b = poisson_workload({"y": 50.0}, num_requests=10, seed=3)
        merged = merge_workloads(a, b)
        for first, second in zip(merged, merged[1:]):
            if first.arrival_time == second.arrival_time:
                assert (first.model, second.model) == ("x", "y")
        # Deterministic: merging again gives the identical stream.
        assert merge_workloads(a, b) == merged


# --------------------------------------------------------------------------- #
# Worker pool
# --------------------------------------------------------------------------- #
class TestWorkerPool:
    def test_batches_spread_across_free_workers(
        self, cache, small_chip, fast_constraints
    ):
        pool = WorkerPool(
            small_chip, num_chips=2, plan_cache=cache, constraints=fast_constraints
        )
        batcher = DynamicBatcher(max_batch_size=1, batch_window=0.0)
        graph = build_tiny(1)
        executions = [
            pool.place(batch, graph)
            for batch in batcher.batches(
                uniform_workload(["tiny"], num_requests=4, interval=0.0)
            )
        ]
        assert {execution.worker for execution in executions} == {0, 1}
        # On any single worker, batches run back to back, never overlapping.
        by_worker: dict[int, list] = {}
        for execution in executions:
            by_worker.setdefault(execution.worker, []).append(execution)
        for runs in by_worker.values():
            for earlier, later in zip(runs, runs[1:]):
                assert later.start_time >= earlier.completion_time

    def test_compile_penalty_only_on_miss(self, cache, small_chip, fast_constraints):
        pool = WorkerPool(
            small_chip, num_chips=1, plan_cache=cache, constraints=fast_constraints
        )
        batcher = DynamicBatcher(max_batch_size=1, batch_window=0.0)
        graph = build_tiny(1)
        batches = list(
            batcher.batches(uniform_workload(["tiny"], num_requests=2, interval=10.0))
        )
        cold = pool.place(batches[0], graph)
        warm = pool.place(batches[1], graph)
        assert cold.cache_outcome == COMPILE
        assert cold.compile_penalty > 0
        assert warm.cache_outcome == HIT_MEMORY
        assert warm.compile_penalty == 0.0
        assert warm.latency == pytest.approx(cold.latency)

    def test_oversized_graph_is_rejected_not_crashed(
        self, cache, tiny_chip, fast_constraints
    ):
        pool = WorkerPool(
            tiny_chip, num_chips=1, plan_cache=cache, constraints=fast_constraints
        )
        batcher = DynamicBatcher(max_batch_size=1, batch_window=0.0)
        huge = build_tiny(64, width=4096)
        [batch] = batcher.batches([InferenceRequest(0, "huge", 0.0)])
        execution = pool.place(batch, huge)
        assert not execution.ok
        assert execution.status == "oom"


# --------------------------------------------------------------------------- #
# End-to-end scheduler
# --------------------------------------------------------------------------- #
class TestServingScheduler:
    def make_scheduler(self, cache, small_chip, fast_constraints, **kwargs):
        models = [
            ServedModel("tiny", build_tiny, max_batch_size=8),
            ServedModel(
                "wide", lambda batch: build_tiny(batch, width=96), max_batch_size=4
            ),
        ]
        kwargs.setdefault("num_chips", 2)
        kwargs.setdefault("batch_window", 1e-3)
        return ServingScheduler(
            models,
            chip=small_chip,
            constraints=fast_constraints,
            plan_cache=cache,
            **kwargs,
        )

    def test_warm_cache_serves_100_requests_with_zero_recompiles(
        self, cache, small_chip, fast_constraints
    ):
        scheduler = self.make_scheduler(cache, small_chip, fast_constraints)
        warm = scheduler.warm()
        # Every (model, bucket) combination compiled exactly once: 4 + 3.
        assert [lookup.outcome for lookup in warm] == [COMPILE] * 7
        requests = poisson_workload(
            {"tiny": 3000.0, "wide": 1000.0}, num_requests=100, seed=3
        )
        report = scheduler.serve(requests)
        assert report.total_completed == 100
        assert report.recompilations == 0
        assert report.cache_hit_rate == 1.0
        assert report.cache.saved_seconds > 0
        # SLO metrics are present and ordered.
        tails = report.overall_percentiles
        assert 0 < tails["p50"] <= tails["p95"] <= tails["p99"]
        assert report.overall_throughput > 0
        for stats in report.per_model.values():
            assert stats.recompilations == 0
            assert stats.completed > 0
            assert stats.throughput > 0

    def test_cold_serve_compiles_each_bucket_once(
        self, cache, small_chip, fast_constraints
    ):
        scheduler = self.make_scheduler(cache, small_chip, fast_constraints)
        requests = poisson_workload({"tiny": 3000.0}, num_requests=50, seed=1)
        report = scheduler.serve(requests)
        buckets_used = {
            record.padded_batch_size for record in report.completed if record.ok
        }
        assert report.recompilations == len(buckets_used)
        # A second identical run is fully cached.
        rerun = scheduler.serve(requests)
        assert rerun.recompilations == 0
        assert rerun.cache_hit_rate == 1.0

    def test_more_chips_do_not_hurt_throughput_under_load(
        self, cache, small_chip, fast_constraints
    ):
        requests = poisson_workload({"tiny": 50_000.0}, num_requests=80, seed=2)
        single = self.make_scheduler(cache, small_chip, fast_constraints, num_chips=1)
        single.warm(["tiny"])
        one = single.serve(requests)
        double = self.make_scheduler(cache, small_chip, fast_constraints, num_chips=4)
        four = double.serve(requests)
        assert four.overall_throughput >= one.overall_throughput
        assert four.overall_percentiles["p99"] <= one.overall_percentiles["p99"]

    def test_unknown_model_is_rejected(self, cache, small_chip, fast_constraints):
        scheduler = self.make_scheduler(cache, small_chip, fast_constraints)
        with pytest.raises(ValueError, match="unserved"):
            scheduler.serve([InferenceRequest(0, "nope", 0.0)])

    def test_duplicate_served_model_is_rejected(
        self, cache, small_chip, fast_constraints
    ):
        with pytest.raises(ValueError, match="duplicate"):
            ServingScheduler(
                [
                    ServedModel("tiny", build_tiny),
                    ServedModel("tiny", build_tiny),
                ],
                chip=small_chip,
                plan_cache=cache,
            )

    def test_report_rows_render_as_table(self, cache, small_chip, fast_constraints):
        from repro.experiments.common import format_table

        scheduler = self.make_scheduler(cache, small_chip, fast_constraints)
        scheduler.warm()
        report = scheduler.serve(
            poisson_workload({"tiny": 2000.0, "wide": 500.0}, num_requests=40, seed=5)
        )
        rows = report.rows()
        assert [row["model"] for row in rows] == ["tiny", "wide"]
        table = format_table(rows, title="serving")
        assert "tiny" in table and "wide" in table
        assert "requests on 2 chip(s)" in report.summary()
