"""Tests for the observability layer (repro.obs): tracing, metrics, export.

The load-bearing guarantees:

* a *disabled* tracer records nothing and costs (near) nothing, so the
  instrumentation can stay in hot paths unconditionally;
* virtual-domain event streams are a pure function of the workload —
  bit-identical across runs and across compilation parallelism;
* the Chrome-trace export passes its own schema validator, names every
  pid/tid it references, and is byte-deterministic;
* traced engine runs carry exactly one request-lifecycle span per request
  and one occupancy track per chip.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.experiments.common import trace_session
from repro.obs import (
    DOMAIN_SIM,
    DOMAIN_VIRTUAL,
    DOMAIN_WALL,
    KIND_ASYNC,
    KIND_FLOW_END,
    KIND_FLOW_START,
    KIND_INSTANT,
    KIND_SPAN,
    NULL_TRACER,
    MetricsRegistry,
    TraceEvent,
    Tracer,
    disabled_overhead_ns,
    event_to_record,
    get_tracer,
    publish_stats,
    read_jsonl,
    summarize,
    to_chrome_trace,
    use_tracer,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.serving import StaticEngine, decode_workload

from test_continuous import make_engine, make_model, request


@pytest.fixture()
def cache(small_cost_model, fast_constraints):
    from repro.core import T10Compiler
    from repro.serving import PlanCache

    return PlanCache(
        compiler_factory=lambda chip, constraints: T10Compiler(
            chip, cost_model=small_cost_model, constraints=constraints
        ),
    )


def sample_tracer() -> Tracer:
    """A small synthetic trace exercising every event kind."""
    tracer = Tracer()
    tracer.span("iter", ts=0.0, dur=0.5, track="eng/chip0", cat="decode")
    tracer.span("iter", ts=0.5, dur=0.5, track="eng/chip0", args={"batch": 2})
    tracer.instant("admit", ts=0.25, track="eng/chip0")
    tracer.counter("queues", ts=0.0, track="eng/fleet", values={"depth": 3.0})
    tracer.flow("flow-start", "eng/r0", ts=0.0, track="eng/requests")
    tracer.flow("flow-end", "eng/r0", ts=1.0, track="eng/chip0")
    tracer.async_span("request", ts=0.0, dur=1.0, track="eng/requests", flow_id="eng/r0")
    tracer.span("compile", ts=0.0, dur=0.1, track="cache/lookups", domain=DOMAIN_WALL)
    tracer.span("mb0", ts=0.0, dur=0.2, track="pipe/stage0", domain=DOMAIN_SIM)
    return tracer


# --------------------------------------------------------------------------- #
# Tracer core
# --------------------------------------------------------------------------- #
class TestTracer:
    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        tracer.span("s", ts=0.0, dur=1.0, track="t")
        tracer.instant("i", ts=0.0, track="t")
        tracer.counter("c", ts=0.0, track="t", values={"v": 1.0})
        tracer.flow("flow-start", "f", ts=0.0, track="t")
        tracer.async_span("a", ts=0.0, dur=1.0, track="t", flow_id="f")
        tracer.wall_instant("w", track="t")
        with tracer.wall_span("ws", track="t") as span:
            span.set(outcome="ok")
        assert len(tracer) == 0
        assert tracer.events() == []

    def test_event_fields_and_args_are_canonical(self):
        tracer = Tracer()
        tracer.span("s", ts=1.0, dur=2.0, track="g/t", args={"b": 1, "a": 2})
        (event,) = tracer.events()
        assert event.kind == KIND_SPAN
        assert event.group == "g"
        assert event.track_name == "t"
        assert event.domain == DOMAIN_VIRTUAL
        # args are stored sorted so equal payloads compare equal regardless
        # of insertion order (the determinism tests rely on ==).
        assert event.args == (("a", 2), ("b", 1))
        assert event.args_dict() == {"a": 2, "b": 1}
        tracer.span("s", ts=1.0, dur=2.0, track="g/t", args={"a": 2, "b": 1})
        first, second = tracer.events()
        assert first == second

    def test_track_without_group_lands_in_main(self):
        tracer = Tracer()
        tracer.instant("i", ts=0.0, track="solo")
        (event,) = tracer.events()
        assert event.group == "main"
        assert event.track_name == "solo"

    def test_flow_rejects_non_flow_kind(self):
        tracer = Tracer()
        with pytest.raises(ValueError, match="flow"):
            tracer.flow("span", "f", ts=0.0, track="t")

    def test_virtual_events_excludes_wall_and_sim(self):
        tracer = sample_tracer()
        domains = {event.domain for event in tracer.events()}
        assert domains == {DOMAIN_VIRTUAL, DOMAIN_WALL, DOMAIN_SIM}
        assert all(
            event.domain == DOMAIN_VIRTUAL for event in tracer.virtual_events()
        )
        assert len(tracer.virtual_events()) == len(tracer) - 2

    def test_wall_span_measures_and_attaches_args(self):
        tracer = Tracer()
        with tracer.wall_span("lookup", track="cache/lookups", cat="cache") as span:
            span.set(outcome="hit")
        (event,) = tracer.events()
        assert event.domain == DOMAIN_WALL
        assert event.dur >= 0.0
        assert event.args_dict()["outcome"] == "hit"

    def test_ambient_tracer_install_and_restore(self):
        assert get_tracer() is NULL_TRACER
        tracer = Tracer()
        with use_tracer(tracer):
            assert get_tracer() is tracer
            inner = Tracer()
            with use_tracer(inner):
                assert get_tracer() is inner
            assert get_tracer() is tracer
        assert get_tracer() is NULL_TRACER

    def test_clear_keeps_metrics(self):
        tracer = sample_tracer()
        tracer.metrics.counter("kept").inc()
        tracer.clear()
        assert len(tracer) == 0
        assert "kept" in tracer.metrics

    def test_disabled_overhead_is_measurable(self):
        result = disabled_overhead_ns(iterations=2_000)
        assert set(result) >= {"baseline_ns", "instant_ns", "span_ns"}
        assert result["instant_ns"] > 0.0
        # Generous sanity bound; the CI obs-smoke leg asserts the real budget.
        assert result["span_ns"] < 100_000.0


# --------------------------------------------------------------------------- #
# Metrics registry
# --------------------------------------------------------------------------- #
class TestRegistry:
    def test_counter_create_on_first_use_and_monotone(self):
        registry = MetricsRegistry()
        registry.counter("a.hits").inc()
        registry.counter("a.hits").inc(2.5)
        assert registry.counter("a.hits").value == 3.5
        with pytest.raises(ValueError):
            registry.counter("a.hits").inc(-1.0)

    def test_type_clash_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError, match="Counter"):
            registry.gauge("x")

    def test_gauge_tracks_max(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(3.0)
        gauge.set(1.0)
        gauge.add(0.5)
        assert gauge.value == 1.5
        assert gauge.max == 3.0

    def test_histogram_aggregates_and_quarantines_non_finite(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat")
        assert math.isnan(histogram.mean)
        for value in (0.5, 2.0, 8.0):
            histogram.observe(value)
        histogram.observe(float("nan"))
        histogram.observe(float("inf"))
        assert histogram.count == 3
        assert histogram.mean == pytest.approx(10.5 / 3)
        out = histogram.as_dict()
        assert out["non_finite"] == 2.0
        assert out["min"] == 0.5
        assert out["max"] == 8.0
        # log2 buckets: 0.5 -> 0, 2.0 -> 2, 8.0 -> 4
        assert out["le_2e0"] == 1.0

    def test_names_sorted_and_as_dict(self):
        registry = MetricsRegistry()
        registry.counter("b")
        registry.counter("a")
        assert registry.names() == ["a", "b"]
        assert list(registry.as_dict()) == ["a", "b"]

    def test_walk_prefix(self):
        registry = MetricsRegistry()
        registry.counter("cache.hits")
        registry.counter("cache.misses")
        registry.counter("serving.shed")
        names = [metric.name for metric in registry.walk("cache")]
        assert names == ["cache.hits", "cache.misses"]

    def test_publish_stats_skips_non_numeric_and_degenerate(self):
        registry = MetricsRegistry()
        publish_stats(
            registry,
            "s",
            {
                "count": 3,
                "ratio": 0.5,
                "label": "text",
                "flag": True,
                "broken": float("nan"),
                "negative": -1.0,
            },
        )
        assert registry.names() == ["s.count", "s.ratio"]
        assert registry.counter("s.count").value == 3.0

    def test_publish_stats_accepts_dataclasses(self):
        from repro.serving.plan_cache import CacheStats

        registry = MetricsRegistry()
        publish_stats(registry, "cache", CacheStats(hits_memory=4, misses=1))
        assert registry.counter("cache.hits_memory").value == 4.0
        assert registry.counter("cache.misses").value == 1.0

    def test_publish_stats_rejects_other_types(self):
        with pytest.raises(TypeError):
            publish_stats(MetricsRegistry(), "x", 42)


# --------------------------------------------------------------------------- #
# Exporters
# --------------------------------------------------------------------------- #
class TestChromeExport:
    def test_sample_trace_passes_validator(self):
        data = to_chrome_trace(sample_tracer())
        assert validate_chrome_trace(data) == []
        assert data["displayTimeUnit"] == "ms"

    def test_domains_become_separate_processes(self):
        data = to_chrome_trace(sample_tracer())
        names = {
            event["args"]["name"]
            for event in data["traceEvents"]
            if event["ph"] == "M" and event["name"] == "process_name"
        }
        assert "eng [virtual]" in names
        assert "cache [wall]" in names
        assert "pipe [sim]" in names

    def test_async_spans_export_as_paired_begin_end(self):
        data = to_chrome_trace(sample_tracer())
        begins = [e for e in data["traceEvents"] if e["ph"] == "b"]
        ends = [e for e in data["traceEvents"] if e["ph"] == "e"]
        assert len(begins) == len(ends) == 1
        assert begins[0]["id"] == ends[0]["id"]
        assert ends[0]["ts"] == begins[0]["ts"] + 1.0 * 1e6

    def test_flow_end_carries_binding_point(self):
        data = to_chrome_trace(sample_tracer())
        flow_end = next(e for e in data["traceEvents"] if e["ph"] == "f")
        assert flow_end["bp"] == "e"
        flow_start = next(e for e in data["traceEvents"] if e["ph"] == "s")
        assert flow_start["id"] == flow_end["id"]

    def test_timestamps_scaled_to_microseconds(self):
        tracer = Tracer()
        tracer.span("s", ts=0.25, dur=0.5, track="g/t")
        (event,) = [e for e in to_chrome_trace(tracer)["traceEvents"] if e["ph"] == "X"]
        assert event["ts"] == 0.25 * 1e6
        assert event["dur"] == 0.5 * 1e6

    def test_export_is_byte_deterministic(self, tmp_path):
        first = write_chrome_trace(sample_tracer(), tmp_path / "a.json")
        second = write_chrome_trace(sample_tracer(), tmp_path / "b.json")
        assert first.read_bytes() == second.read_bytes()

    def test_validator_flags_broken_traces(self):
        assert validate_chrome_trace({}) == ["traceEvents missing or not a list"]
        problems = validate_chrome_trace(
            {
                "traceEvents": [
                    {"ph": "Z", "name": "x", "pid": 1, "tid": 1},
                    {"ph": "X", "name": "x", "pid": 1, "tid": 1, "ts": 0.0},
                    {"ph": "i", "name": "x", "pid": 1, "tid": 1, "ts": -5.0},
                ]
            }
        )
        assert any("unknown ph" in p for p in problems)
        assert any("bad dur" in p for p in problems)
        assert any("bad ts" in p for p in problems)
        # No metadata names the pids/tids the events reference.
        assert any("process_name" in p for p in problems)


class TestJsonlExport:
    def test_round_trip_preserves_events_and_metrics(self, tmp_path):
        tracer = sample_tracer()
        tracer.metrics.counter("cache.hits").inc(3)
        path = write_jsonl(tracer, tmp_path / "trace.jsonl")
        events, metrics = read_jsonl(path)
        assert events == tracer.events()
        assert metrics["cache.hits"]["value"] == 3.0

    def test_records_are_single_line_json(self):
        record = event_to_record(
            TraceEvent(
                kind=KIND_INSTANT,
                name="i",
                track="g/t",
                domain=DOMAIN_VIRTUAL,
                ts=1.0,
            )
        )
        assert "\n" not in json.dumps(record)
        # Defaulted fields are omitted from the record.
        assert "dur" not in record and "flow_id" not in record

    def test_summary_renders_tracks_and_metrics(self):
        tracer = sample_tracer()
        tracer.metrics.counter("cache.hits").inc()
        text = summarize(tracer.events(), tracer.metrics.as_dict())
        assert "eng/chip0" in text
        assert "cache.hits" in text
        assert "metrics:" in text


# --------------------------------------------------------------------------- #
# trace_session plumbing (--trace)
# --------------------------------------------------------------------------- #
class TestTraceSession:
    def test_none_path_is_a_noop(self):
        with trace_session(None) as tracer:
            assert tracer is NULL_TRACER
            assert get_tracer() is NULL_TRACER

    def test_json_path_writes_valid_chrome_trace(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        with trace_session(out) as tracer:
            assert get_tracer() is tracer
            tracer.instant("i", ts=0.0, track="g/t")
        data = json.loads(out.read_text())
        assert validate_chrome_trace(data) == []
        assert "trace: wrote" in capsys.readouterr().out

    def test_jsonl_path_writes_event_log(self, tmp_path):
        out = tmp_path / "trace.jsonl"
        with trace_session(out) as tracer:
            tracer.instant("i", ts=0.5, track="g/t")
        events, _ = read_jsonl(out)
        assert [event.name for event in events] == ["i"]

    def test_export_survives_a_raising_block(self, tmp_path):
        out = tmp_path / "partial.json"
        with pytest.raises(RuntimeError):
            with trace_session(out) as tracer:
                tracer.instant("i", ts=0.0, track="g/t")
                raise RuntimeError("boom")
        assert validate_chrome_trace(json.loads(out.read_text())) == []


# --------------------------------------------------------------------------- #
# Traced engine runs: lifecycle spans, occupancy tracks, determinism
# --------------------------------------------------------------------------- #
class TestTracedEngines:
    def run_traced(self, engine, workload) -> tuple[Tracer, object]:
        tracer = Tracer()
        engine.warm()
        with use_tracer(tracer):
            report = engine.run(workload)
        return tracer, report

    def test_one_lifecycle_span_per_request(self, cache, small_chip, fast_constraints):
        engine = make_engine(cache, small_chip, fast_constraints)
        workload = decode_workload(
            "tiny", num_requests=12, rate=5000.0, seed=2, slo_seconds=0.005
        )
        tracer, report = self.run_traced(engine, workload)
        lifecycles = [
            event for event in tracer.virtual_events() if event.kind == KIND_ASYNC
        ]
        assert len(lifecycles) == report.total_completed + report.shed == 12
        assert {event.name for event in lifecycles} == {"request"}
        # ... and exactly one flow start/end pair per request.
        starts = [e for e in tracer.events() if e.kind == KIND_FLOW_START]
        ends = [e for e in tracer.events() if e.kind == KIND_FLOW_END]
        assert len(starts) == len(ends) == 12
        assert {e.flow_id for e in starts} == {e.flow_id for e in ends}
        assert all(
            flow_id.startswith(engine.trace_group) for flow_id in
            {e.flow_id for e in starts}
        )

    def test_one_occupancy_track_per_chip(self, cache, small_chip, fast_constraints):
        engine = make_engine(
            cache, small_chip, fast_constraints, num_chips=2, min_replicas=2
        )
        workload = decode_workload(
            "tiny", num_requests=16, rate=5000.0, seed=6, slo_seconds=0.01
        )
        tracer, _ = self.run_traced(engine, workload)
        chip_tracks = {
            event.track
            for event in tracer.virtual_events()
            if event.kind == KIND_SPAN and event.name == "iteration"
        }
        group = engine.trace_group
        assert chip_tracks == {f"{group}/chip0", f"{group}/chip1"}

    def test_static_engine_traces_lifecycles_too(
        self, cache, small_chip, fast_constraints
    ):
        engine = StaticEngine(
            make_model(),
            chip=small_chip,
            constraints=fast_constraints,
            plan_cache=cache,
        )
        tracer, report = self.run_traced(
            engine, [request(0, 0.0), request(1, 0.0, tokens=2)]
        )
        lifecycles = [
            event for event in tracer.virtual_events() if event.kind == KIND_ASYNC
        ]
        assert len(lifecycles) == report.total_completed == 2
        assert any(event.name == "iteration" for event in tracer.virtual_events())

    def test_shed_requests_get_closed_lifecycles(
        self, cache, small_chip, fast_constraints
    ):
        engine = make_engine(cache, small_chip, fast_constraints)
        unit = engine.iteration_latency(1)
        tracer, report = self.run_traced(
            engine, [request(0, 0.0, tokens=50, deadline=unit * 0.5)]
        )
        assert report.shed == 1
        (lifecycle,) = [
            event for event in tracer.virtual_events() if event.kind == KIND_ASYNC
        ]
        assert lifecycle.args_dict()["status"] == "shed"
        sheds = [event for event in tracer.events() if event.name == "shed"]
        assert len(sheds) == 1

    def test_virtual_stream_is_deterministic_across_runs(
        self, cache, small_chip, fast_constraints
    ):
        workload = decode_workload(
            "tiny", num_requests=20, rate=5000.0, seed=4, slo_seconds=0.005
        )
        first_tracer, first = self.run_traced(
            make_engine(cache, small_chip, fast_constraints, num_chips=2), workload
        )
        second_tracer, second = self.run_traced(
            make_engine(cache, small_chip, fast_constraints, num_chips=2), workload
        )
        assert first.completed == second.completed
        assert first_tracer.virtual_events() == second_tracer.virtual_events()
        # The full traces may differ (wall-domain cache lookups), only the
        # virtual stream is guaranteed.
        assert len(first_tracer.virtual_events()) > 0

    def test_traced_run_exports_valid_chrome_trace(
        self, cache, small_chip, fast_constraints, tmp_path
    ):
        engine = make_engine(cache, small_chip, fast_constraints)
        workload = decode_workload(
            "tiny", num_requests=8, rate=5000.0, seed=1, slo_seconds=0.01
        )
        tracer, _ = self.run_traced(engine, workload)
        data = to_chrome_trace(tracer)
        assert validate_chrome_trace(data) == []
        path = write_chrome_trace(tracer, tmp_path / "run.json")
        assert validate_chrome_trace(json.loads(path.read_text())) == []

    def test_untraced_run_matches_traced_run(self, cache, small_chip, fast_constraints):
        # Instrumentation must be observation only: the report is identical
        # with tracing on and off.
        workload = decode_workload(
            "tiny", num_requests=10, rate=5000.0, seed=8, slo_seconds=0.005
        )
        traced_engine = make_engine(cache, small_chip, fast_constraints)
        _, traced = self.run_traced(traced_engine, workload)
        plain_engine = make_engine(cache, small_chip, fast_constraints)
        plain_engine.warm()
        plain = plain_engine.run(workload)
        assert traced.completed == plain.completed
        assert traced.iterations == plain.iterations
        assert traced.makespan == plain.makespan

    def test_run_metrics_published_when_traced(
        self, cache, small_chip, fast_constraints
    ):
        engine = make_engine(cache, small_chip, fast_constraints)
        workload = decode_workload(
            "tiny", num_requests=6, rate=5000.0, seed=3, slo_seconds=0.01
        )
        tracer, report = self.run_traced(engine, workload)
        prefix = f"serving.{engine.trace_group}"
        assert f"{prefix}.completed" in tracer.metrics
        assert (
            tracer.metrics.counter(f"{prefix}.completed").value
            == report.total_completed
        )
        assert tracer.metrics.histogram(f"{prefix}.latency_s").count == (
            report.total_completed
        )


# --------------------------------------------------------------------------- #
# Traced fleet runs: per-tenant lanes
# --------------------------------------------------------------------------- #
class TestTracedFleet:
    def make_fleet(self, cache, small_chip, fast_constraints):
        from repro.serving import FleetEngine, TenantSpec

        return FleetEngine(
            [make_model()],
            tenants=[TenantSpec("acme"), TenantSpec("globex")],
            chip=small_chip,
            num_chips=2,
            constraints=fast_constraints,
            plan_cache=cache,
        )

    def workload(self):
        from repro.serving import merge_decode_workloads

        return merge_decode_workloads(
            decode_workload(
                "tiny", num_requests=8, rate=4000.0, seed=1,
                slo_seconds=0.01, tenant="acme",
            ),
            decode_workload(
                "tiny", num_requests=6, rate=3000.0, seed=2,
                slo_seconds=0.01, tenant="globex",
            ),
        )

    def run_traced(self, engine, workload):
        tracer = Tracer()
        engine.warm()
        with use_tracer(tracer):
            report = engine.run(workload)
        return tracer, report

    def test_request_lifecycles_live_on_tenant_lanes(
        self, cache, small_chip, fast_constraints
    ):
        engine = self.make_fleet(cache, small_chip, fast_constraints)
        tracer, report = self.run_traced(engine, self.workload())
        group = engine.trace_group
        by_lane: dict[str, int] = {}
        for event in tracer.virtual_events():
            if event.kind == KIND_ASYNC and event.name == "request":
                by_lane[event.track] = by_lane.get(event.track, 0) + 1
        # Exactly one lifecycle span per request, on the owner tenant's lane.
        assert by_lane == {
            f"{group}/tenant/acme": 8,
            f"{group}/tenant/globex": 6,
        }
        assert sum(by_lane.values()) == report.total_completed + report.shed

    def test_tenant_lanes_carry_queue_and_served_counters(
        self, cache, small_chip, fast_constraints
    ):
        engine = self.make_fleet(cache, small_chip, fast_constraints)
        tracer, report = self.run_traced(engine, self.workload())
        group = engine.trace_group
        for tenant in ("acme", "globex"):
            samples = [
                event
                for event in tracer.virtual_events()
                if event.name == "tenant"
                and event.track == f"{group}/tenant/{tenant}"
            ]
            assert samples, f"no counter samples on tenant lane {tenant}"
            values = samples[-1].args_dict()
            assert values["served"] == report.tenant_slice(tenant).total_completed
            assert values["queued"] == 0

    def test_fleet_export_is_byte_stable(
        self, cache, small_chip, fast_constraints, tmp_path
    ):
        """Two identical traced fleet runs export byte-identical Chrome
        traces — the per-tenant lanes do not disturb export determinism."""
        workload = self.workload()
        first_tracer, _ = self.run_traced(
            self.make_fleet(cache, small_chip, fast_constraints), workload
        )
        second_tracer, _ = self.run_traced(
            self.make_fleet(cache, small_chip, fast_constraints), workload
        )
        assert first_tracer.virtual_events() == second_tracer.virtual_events()

        # Wall-domain events (cache lookups) carry real timings, so only the
        # virtual stream is byte-stable across runs.
        def export_bytes(tracer, path):
            filtered = Tracer()
            for event in tracer.virtual_events():
                filtered.record(event)
            return write_chrome_trace(filtered, path).read_bytes()

        first = export_bytes(first_tracer, tmp_path / "a.json")
        second = export_bytes(second_tracer, tmp_path / "b.json")
        assert first == second
        assert validate_chrome_trace(json.loads((tmp_path / "a.json").read_text())) == []
