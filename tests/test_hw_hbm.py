"""Tests for the emulated-HBM double-buffering model."""

from __future__ import annotations

import pytest

from repro.hw.hbm import HBMConfig, HBMModel, PrefetchGroup
from repro.hw.memory import OutOfChipMemoryError


@pytest.fixture()
def hbm():
    return HBMModel(HBMConfig(bandwidth=400e9))


class TestConfig:
    def test_rejects_bad_bandwidth(self):
        with pytest.raises(ValueError):
            HBMConfig(bandwidth=0)

    def test_rejects_bad_buffers(self):
        with pytest.raises(ValueError):
            HBMConfig(bandwidth=1e9, execution_buffer_bytes=0)

    def test_default_buffers_match_paper(self):
        config = HBMConfig(bandwidth=1e9)
        assert config.execution_buffer_bytes == 596 * 1024 * 1024
        assert config.prefetch_buffer_bytes == 298 * 1024 * 1024


class TestGrouping:
    def test_single_op_groups(self, hbm):
        groups = hbm.group_operators(["a", "b", "c"], [10, 20, 30], [1.0, 2.0, 3.0], group_size=1)
        assert len(groups) == 3
        assert groups[0].names == ("a",)

    def test_grouped(self, hbm):
        groups = hbm.group_operators(["a", "b", "c", "d"], [10] * 4, [1.0] * 4, group_size=2)
        assert len(groups) == 2
        assert groups[0].load_bytes == 20
        assert groups[0].execution_time == pytest.approx(2.0)

    def test_group_split_on_buffer_overflow(self, hbm):
        big = hbm.config.prefetch_buffer_bytes
        groups = hbm.group_operators(["a", "b"], [big, big], [1.0, 1.0], group_size=4)
        assert len(groups) == 2

    def test_mismatched_lengths_rejected(self, hbm):
        with pytest.raises(ValueError):
            hbm.group_operators(["a"], [1, 2], [1.0])

    def test_bad_group_size(self, hbm):
        with pytest.raises(ValueError):
            hbm.group_operators(["a"], [1], [1.0], group_size=0)

    def test_oversized_operator_is_cut_and_flagged(self, hbm):
        # Regression: an operator whose load alone exceeds the prefetch
        # buffer used to form a silently un-double-bufferable group.
        big = hbm.config.prefetch_buffer_bytes + 1
        groups = hbm.group_operators(
            ["a", "huge", "b"], [10, big, 10], [1.0, 1.0, 1.0], group_size=4
        )
        assert [group.names for group in groups] == [("a",), ("huge",), ("b",)]
        assert [group.oversized for group in groups] == [False, True, False]

    def test_oversized_operator_raises_when_asked(self, hbm):
        big = hbm.config.prefetch_buffer_bytes + 1
        with pytest.raises(OutOfChipMemoryError, match="double-buffered"):
            hbm.group_operators(["huge"], [big], [1.0], on_oversized="raise")

    def test_exactly_buffer_sized_operator_is_not_oversized(self, hbm):
        groups = hbm.group_operators(
            ["a"], [hbm.config.prefetch_buffer_bytes], [1.0], on_oversized="raise"
        )
        assert len(groups) == 1
        assert not groups[0].oversized

    def test_unknown_oversized_policy_rejected(self, hbm):
        with pytest.raises(ValueError):
            hbm.group_operators(["a"], [1], [1.0], on_oversized="ignore")


class TestPipelineLatency:
    def test_empty(self, hbm):
        assert hbm.pipeline_latency([]) == 0.0

    def test_single_group(self, hbm):
        group = PrefetchGroup(("a",), load_bytes=int(400e9), execution_time=2.0)
        # 1 second load (not hidden) + 2 seconds execution.
        assert hbm.pipeline_latency([group]) == pytest.approx(3.0)

    def test_overlap_hides_faster_load(self, hbm):
        groups = [
            PrefetchGroup(("a",), load_bytes=int(400e9), execution_time=5.0),
            PrefetchGroup(("b",), load_bytes=int(400e9), execution_time=5.0),
        ]
        # First load 1s exposed; second load (1s) hidden behind 5s execution.
        assert hbm.pipeline_latency(groups) == pytest.approx(1.0 + 5.0 + 5.0)

    def test_slow_hbm_dominates(self):
        hbm = HBMModel(HBMConfig(bandwidth=1e9))
        groups = [
            PrefetchGroup(("a",), load_bytes=int(10e9), execution_time=0.1),
            PrefetchGroup(("b",), load_bytes=int(10e9), execution_time=0.1),
        ]
        latency = hbm.pipeline_latency(groups)
        assert latency == pytest.approx(10.0 + 10.0 + 0.1)

    def test_higher_bandwidth_never_slower(self):
        loads = [int(5e9)] * 4
        times = [0.5] * 4
        slow = HBMModel(HBMConfig(bandwidth=200e9))
        fast = HBMModel(HBMConfig(bandwidth=6400e9))
        slow_latency = slow.pipeline_latency(slow.group_operators(list("abcd"), loads, times))
        fast_latency = fast.pipeline_latency(fast.group_operators(list("abcd"), loads, times))
        assert fast_latency <= slow_latency

    def test_grouping_helps_when_bandwidth_low(self):
        """Grouping balances load-heavy and compute-heavy operators (Fig. 24)."""
        hbm = HBMModel(HBMConfig(bandwidth=200e9))
        names = ["a", "b", "c", "d"]
        loads = [int(20e9), int(1e9), int(20e9), int(1e9)]
        times = [0.01, 0.2, 0.01, 0.2]
        single = hbm.pipeline_latency(hbm.group_operators(names, loads, times, group_size=1))
        grouped = hbm.pipeline_latency(hbm.group_operators(names, loads, times, group_size=2))
        assert grouped <= single

    def test_oversized_group_load_is_fully_exposed(self):
        hbm = HBMModel(HBMConfig(bandwidth=1e9))
        big = hbm.config.prefetch_buffer_bytes + int(1e9)
        groups = hbm.group_operators(
            ["a", "huge"], [int(1e9), big], [5.0, 0.1], group_size=1
        )
        assert groups[1].oversized
        # The oversized load (big / 1 GB/s) cannot hide behind the 5 s
        # execution of "a": it is paid in full on top.
        expected = 1.0 + 5.0 + big / 1e9 + 0.1
        assert hbm.pipeline_latency(groups) == pytest.approx(expected)

    def test_validation(self):
        with pytest.raises(ValueError):
            PrefetchGroup(("a",), load_bytes=-1, execution_time=1.0)
        with pytest.raises(ValueError):
            PrefetchGroup(("a",), load_bytes=1, execution_time=-1.0)
