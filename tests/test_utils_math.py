"""Unit and property tests for the integer-math helpers."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.utils import (
    candidate_splits,
    ceil_div,
    clamp,
    divisors,
    geometric_mean,
    iter_factorizations,
    padded_length,
    prod,
    round_up,
)


class TestProd:
    def test_empty(self):
        assert prod([]) == 1

    def test_basic(self):
        assert prod([2, 3, 4]) == 24

    def test_single(self):
        assert prod([7]) == 7


class TestCeilDiv:
    def test_exact(self):
        assert ceil_div(12, 4) == 3

    def test_rounds_up(self):
        assert ceil_div(13, 4) == 4

    def test_one(self):
        assert ceil_div(5, 1) == 5

    def test_rejects_zero_denominator(self):
        with pytest.raises(ValueError):
            ceil_div(4, 0)

    @given(st.integers(min_value=0, max_value=10**6), st.integers(min_value=1, max_value=10**4))
    def test_matches_float_ceiling(self, a, b):
        assert ceil_div(a, b) == -(-a // b)

    @given(st.integers(min_value=1, max_value=10**6), st.integers(min_value=1, max_value=10**4))
    def test_covers_numerator(self, a, b):
        assert ceil_div(a, b) * b >= a
        assert (ceil_div(a, b) - 1) * b < a


class TestRoundUp:
    def test_already_aligned(self):
        assert round_up(64, 16) == 64

    def test_rounds(self):
        assert round_up(65, 16) == 80

    def test_rejects_bad_multiple(self):
        with pytest.raises(ValueError):
            round_up(10, 0)


class TestPaddedLength:
    def test_even_split(self):
        assert padded_length(12, 4) == 3

    def test_uneven_split(self):
        assert padded_length(10, 4) == 3

    def test_rejects_nonpositive_parts(self):
        with pytest.raises(ValueError):
            padded_length(10, 0)


class TestDivisors:
    def test_small(self):
        assert divisors(12) == (1, 2, 3, 4, 6, 12)

    def test_prime(self):
        assert divisors(13) == (1, 13)

    def test_one(self):
        assert divisors(1) == (1,)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            divisors(0)

    @given(st.integers(min_value=1, max_value=5000))
    def test_all_divide(self, n):
        ds = divisors(n)
        assert all(n % d == 0 for d in ds)
        assert ds[0] == 1 and ds[-1] == n
        assert list(ds) == sorted(set(ds))

    def test_memoised_repeated_calls_do_not_recompute(self):
        """``divisors`` is called per plan candidate (``temporal_factor_choices``
        and the factorization search), so repeats must be cache hits."""
        divisors.cache_clear()
        first = divisors(3600)
        hits_before = divisors.cache_info().hits
        second = divisors(3600)
        assert second is first  # the cached tuple itself, not a recomputation
        assert divisors.cache_info().hits == hits_before + 1

    def test_memoisation_does_not_cache_errors(self):
        for _ in range(2):
            with pytest.raises(ValueError):
                divisors(-4)


class TestCandidateSplits:
    def test_includes_one_and_limit(self):
        splits = candidate_splits(100, 8)
        assert 1 in splits
        assert 8 in splits

    def test_dense(self):
        assert candidate_splits(5, 10, dense=True) == [1, 2, 3, 4, 5]

    def test_capped_by_length(self):
        assert max(candidate_splits(4, 100)) == 4

    def test_rejects_nonpositive_length(self):
        with pytest.raises(ValueError):
            candidate_splits(0, 4)

    @given(st.integers(min_value=1, max_value=2000), st.integers(min_value=1, max_value=256))
    def test_within_bounds(self, length, max_parts):
        splits = candidate_splits(length, max_parts)
        assert all(1 <= s <= min(length, max_parts) for s in splits)


class TestIterFactorizations:
    def test_two_factors(self):
        pairs = set(iter_factorizations(12, 2))
        assert (3, 4) in pairs and (12, 1) in pairs and (1, 12) in pairs
        assert all(a * b == 12 for a, b in pairs)

    def test_single_factor(self):
        assert list(iter_factorizations(9, 1)) == [(9,)]

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            list(iter_factorizations(0, 2))
        with pytest.raises(ValueError):
            list(iter_factorizations(4, 0))

    @given(st.integers(min_value=1, max_value=200), st.integers(min_value=1, max_value=4))
    def test_products_match(self, total, k):
        for factors in iter_factorizations(total, k):
            assert len(factors) == k
            assert prod(factors) == total


class TestClamp:
    def test_inside(self):
        assert clamp(5, 0, 10) == 5

    def test_below(self):
        assert clamp(-1, 0, 10) == 0

    def test_above(self):
        assert clamp(11, 0, 10) == 10

    def test_rejects_inverted_range(self):
        with pytest.raises(ValueError):
            clamp(1, 5, 0)


class TestGeometricMean:
    def test_identity(self):
        assert geometric_mean([4.0]) == pytest.approx(4.0)

    def test_pair(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    @given(st.lists(st.floats(min_value=0.1, max_value=100.0), min_size=1, max_size=20))
    def test_between_min_and_max(self, values):
        mean = geometric_mean(values)
        assert min(values) - 1e-9 <= mean <= max(values) + 1e-9
