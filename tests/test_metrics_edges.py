"""Degenerate-input metrics edges and cache-stat accounting regressions.

Two audits ride together here:

* the metric helpers in :mod:`repro.runtime.metrics` and the report
  summaries in :mod:`repro.serving.metrics` must return *defined* values on
  empty or degenerate inputs (no silent ``nan`` leaking into tables), and
* :class:`repro.serving.plan_cache.CacheStats` search-accounting fields
  (``sketched_candidates`` / ``materialized_plans``) must accumulate only on
  true compiles — never on warm hits, disk hits, or single-flight followers.
"""

from __future__ import annotations

import math
import threading

import pytest

from repro.core import T10Compiler
from repro.runtime.metrics import (
    goodput_rps,
    latency_percentiles,
    percentile,
    slo_attainment,
    throughput_rps,
)
from repro.serving import PlanCache, StaticEngine
from repro.serving.plan_cache import COMPILE, HIT_DISK, HIT_MEMORY

from test_continuous import make_engine, make_model, tiny_decode_builder


@pytest.fixture()
def cache(small_cost_model, fast_constraints):
    """A plan cache compiling with the shared test cost model."""
    return PlanCache(
        compiler_factory=lambda chip, constraints: T10Compiler(
            chip, cost_model=small_cost_model, constraints=constraints
        ),
    )


# --------------------------------------------------------------------------- #
# percentile / throughput degenerate edges (runtime.metrics)
# --------------------------------------------------------------------------- #
class TestPercentileEdges:
    def test_empty_is_nan(self):
        assert math.isnan(percentile([], 50.0))
        tails = latency_percentiles([])
        assert all(math.isnan(value) for value in tails.values())

    def test_nan_entries_are_dropped_not_sorted(self):
        # Regression: nan entries used to flow into sorted() and land at an
        # arbitrary rank, silently corrupting every percentile.
        clean = [1.0, 2.0, 3.0, 4.0]
        dirty = [1.0, float("nan"), 2.0, 3.0, float("nan"), 4.0]
        for q in (0.0, 50.0, 95.0, 100.0):
            assert percentile(dirty, q) == percentile(clean, q)

    def test_all_nan_is_nan(self):
        assert math.isnan(percentile([float("nan")] * 3, 99.0))

    def test_infinities_are_kept(self):
        # An infinite latency is real data (a stuck request), not a gap.
        assert percentile([1.0, float("inf")], 100.0) == float("inf")
        assert percentile([1.0, float("inf")], 0.0) == 1.0

    def test_out_of_range_q_raises(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101.0)
        with pytest.raises(ValueError):
            percentile([1.0], -1.0)

    def test_single_value(self):
        assert percentile([7.5], 99.0) == 7.5


class TestRateEdges:
    def test_zero_completions_is_zero_throughput(self):
        assert throughput_rps(0, 10.0) == 0.0
        assert throughput_rps(0, 0.0) == 0.0

    def test_degenerate_window_is_nan_not_zero(self):
        # Completions with no time span have no meaningful rate; returning
        # 0.0 would claim the system did nothing.
        assert math.isnan(throughput_rps(5, 0.0))
        assert math.isnan(throughput_rps(5, -1.0))
        assert math.isnan(goodput_rps(5, 0.0))

    def test_goodput_rejects_negative_counts(self):
        with pytest.raises(ValueError):
            goodput_rps(-1, 1.0)

    def test_slo_attainment_empty_is_nan(self):
        assert math.isnan(slo_attainment([], 1.0))

    def test_slo_attainment_rejects_negative_slo(self):
        with pytest.raises(ValueError):
            slo_attainment([1.0], -0.5)


# --------------------------------------------------------------------------- #
# Report summaries on empty runs (serving.metrics)
# --------------------------------------------------------------------------- #
class TestEmptyRunSummaries:
    def test_continuous_empty_run_summary_is_defined(
        self, cache, small_chip, fast_constraints
    ):
        report = make_engine(cache, small_chip, fast_constraints).run([])
        text = report.summary()
        assert "no requests served" in text
        assert "nan" not in text

    def test_static_empty_run_summary_is_defined(
        self, cache, small_chip, fast_constraints
    ):
        engine = StaticEngine(
            make_model(), chip=small_chip, constraints=fast_constraints, plan_cache=cache
        )
        report = engine.run([])
        text = report.summary()
        assert "no requests served" in text
        assert "nan" not in text

    def test_all_shed_run_summary_is_defined(self, cache, small_chip, fast_constraints):
        from test_continuous import request

        engine = make_engine(cache, small_chip, fast_constraints)
        unit = engine.iteration_latency(1)
        report = engine.run([request(0, 0.0, tokens=50, deadline=unit * 0.5)])
        assert report.total_completed == 0
        assert report.shed == 1
        text = report.summary()
        assert "no requests served" in text
        assert "1 shed" in text
        assert "nan" not in text

    def test_empty_run_rates_follow_conventions(
        self, cache, small_chip, fast_constraints
    ):
        report = make_engine(cache, small_chip, fast_constraints).run([])
        assert report.throughput == 0.0
        assert report.goodput == 0.0
        assert report.token_throughput == 0.0
        assert math.isnan(report.slo_attainment)
        assert report.utilization == 0.0
        assert report.mean_active_chips == 0.0


# --------------------------------------------------------------------------- #
# CacheStats search accounting (serving.plan_cache)
# --------------------------------------------------------------------------- #
class TestCacheStatsAccumulation:
    def test_cold_compile_accumulates_search_counters(
        self, cache, small_chip, fast_constraints
    ):
        graph = tiny_decode_builder(1)
        lookup = cache.get_or_compile(graph, small_chip, fast_constraints)
        assert lookup.outcome == COMPILE
        assert cache.stats.misses == 1
        # The stats mirror exactly the compiled model's own accounting.
        assert cache.stats.sketched_candidates == lookup.compiled.sketched_candidates
        assert cache.stats.materialized_plans == lookup.compiled.materialized_plans
        assert cache.stats.sketched_candidates > 0
        assert cache.stats.materialized_plans > 0

    def test_warm_hit_does_not_accumulate(self, cache, small_chip, fast_constraints):
        cache.get_or_compile(tiny_decode_builder(1), small_chip, fast_constraints)
        after_compile = cache.stats.snapshot()
        warm = cache.get_or_compile(
            tiny_decode_builder(1), small_chip, fast_constraints
        )
        assert warm.outcome == HIT_MEMORY
        delta = cache.stats.since(after_compile)
        assert delta.hits_memory == 1
        assert delta.misses == 0
        assert delta.sketched_candidates == 0
        assert delta.materialized_plans == 0
        assert delta.compile_seconds == 0.0
        assert delta.saved_seconds > 0.0

    def test_disk_hit_does_not_accumulate(
        self, small_cost_model, small_chip, fast_constraints, tmp_path
    ):
        def factory(chip, constraints):
            return T10Compiler(
                chip, cost_model=small_cost_model, constraints=constraints
            )

        first = PlanCache(tmp_path, compiler_factory=factory)
        first.get_or_compile(tiny_decode_builder(1), small_chip, fast_constraints)
        first.close()
        # A fresh process (new cache, same directory) finds the program on
        # disk: a hit, so the search counters stay zero.
        second = PlanCache(tmp_path, compiler_factory=factory)
        lookup = second.get_or_compile(
            tiny_decode_builder(1), small_chip, fast_constraints
        )
        assert lookup.outcome == HIT_DISK
        assert second.stats.hits_disk == 1
        assert second.stats.misses == 0
        assert second.stats.sketched_candidates == 0
        assert second.stats.materialized_plans == 0
        second.close()

    def test_concurrent_misses_accumulate_exactly_once(
        self, cache, small_chip, fast_constraints
    ):
        # Many threads race one cold key: single-flight elects one compiler;
        # followers count as memory hits and must not double the search
        # accounting.
        num_threads = 6
        barrier = threading.Barrier(num_threads)
        outcomes: list[str] = []
        lock = threading.Lock()

        def lookup_one():
            barrier.wait()
            lookup = cache.get_or_compile(
                tiny_decode_builder(2), small_chip, fast_constraints
            )
            with lock:
                outcomes.append(lookup.outcome)

        threads = [threading.Thread(target=lookup_one) for _ in range(num_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert len(outcomes) == num_threads
        assert outcomes.count(COMPILE) == 1
        assert outcomes.count(HIT_MEMORY) == num_threads - 1
        assert cache.stats.misses == 1
        assert cache.stats.hits_memory == num_threads - 1
        reference = cache.get_or_compile(
            tiny_decode_builder(2), small_chip, fast_constraints
        )
        assert cache.stats.sketched_candidates == reference.compiled.sketched_candidates
        assert cache.stats.materialized_plans == reference.compiled.materialized_plans

    def test_engine_run_reports_zero_search_work_when_warm(
        self, cache, small_chip, fast_constraints
    ):
        from test_continuous import request

        engine = make_engine(cache, small_chip, fast_constraints)
        engine.warm()
        warm_sketched = cache.stats.sketched_candidates
        report = engine.run([request(0, 0.0), request(1, 0.0)])
        # Serving a warm engine does no plan-search work at all.
        assert report.cache.misses == 0
        assert cache.stats.sketched_candidates == warm_sketched
