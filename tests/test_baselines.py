"""Tests for the VGM accounting and the baseline compilers."""

from __future__ import annotations

import pytest

from repro.baselines import (
    AnsorCompiler,
    GPURooflineModel,
    PopARTCompiler,
    RollerCompiler,
    live_activation_bytes,
    model_weight_bytes,
    operator_vgm_footprint,
    vgm_reservation_per_core,
)
from repro.hw.program import ComputeStep, LoadStoreStep
from repro.ir import OperatorGraph, elementwise, gather, matmul
from repro.models import build_nerf, build_opt
from repro.utils import ceil_div


def mlp_graph(m=512, hidden=256) -> OperatorGraph:
    graph = OperatorGraph(name="mlp")
    fc1 = matmul("fc1", m=m, k=hidden, n=hidden)
    act = elementwise("act", {"r": m, "c": hidden}, kind="relu", num_inputs=1)
    fc2 = matmul("fc2", m=m, k=hidden, n=hidden)
    graph.add(fc1)
    graph.add(act, [fc1])
    graph.add(fc2, [act])
    return graph


class TestVGMAccounting:
    def test_weight_bytes(self):
        graph = mlp_graph()
        assert model_weight_bytes(graph) == 2 * 256 * 256 * 2

    def test_liveness_window(self):
        graph = mlp_graph()
        tight = live_activation_bytes(graph, window=1)
        wide = live_activation_bytes(graph, window=3)
        none = live_activation_bytes(graph, liveness=False)
        assert tight <= wide <= none

    def test_reservation_scales_with_cores(self, small_chip):
        graph = mlp_graph()
        reserve = vgm_reservation_per_core(graph, small_chip)
        assert reserve == ceil_div(
            model_weight_bytes(graph) + live_activation_bytes(graph, window=2),
            small_chip.num_cores,
        )

    def test_operator_footprint_ratio(self, small_chip):
        op = matmul("mm", m=512, k=512, n=512)
        footprint = operator_vgm_footprint(op, small_chip, sub_operator_bytes=1000)
        assert footprint.active_region_bytes == ceil_div(op.total_bytes, small_chip.num_cores)
        assert footprint.removable_ratio == pytest.approx(
            footprint.active_region_bytes / 1000
        )

    def test_zero_suboperator_ratio(self, small_chip):
        op = matmul("mm", m=8, k=8, n=8)
        assert operator_vgm_footprint(op, small_chip, 0).removable_ratio == 0.0


class TestRollerCompiler:
    def test_compiles_small_graph(self, small_chip):
        result = RollerCompiler(small_chip).compile(mlp_graph())
        assert result.ok
        assert result.compiler_name == "Roller"
        assert set(result.op_tiles) == {"fc1", "act", "fc2"}

    def test_program_structure(self, small_chip):
        result = RollerCompiler(small_chip).compile(mlp_graph())
        loads = [s for s in result.program.steps if isinstance(s, LoadStoreStep)]
        computes = [s for s in result.program.steps if isinstance(s, ComputeStep)]
        assert len(computes) == 3
        assert len(loads) == 2 * 3  # one fetch phase and one store phase per operator

    def test_vgm_reserved(self, small_chip):
        result = RollerCompiler(small_chip).compile(mlp_graph())
        assert result.program.reserved_per_core > 0

    def test_tile_respects_memory(self, small_chip):
        result = RollerCompiler(small_chip).compile(mlp_graph())
        for tile in result.op_tiles.values():
            reserved = result.program.reserved_per_core
            assert tile.working_set_bytes + reserved <= small_chip.sram_per_core

    def test_fan_in_at_least_one(self, small_chip):
        result = RollerCompiler(small_chip).compile(mlp_graph())
        assert all(tile.fan_in >= 1.0 for tile in result.op_tiles.values())

    def test_gather_loads_bounded_by_touched_data(self, small_chip):
        graph = OperatorGraph(name="embed")
        graph.add(gather("g", vocab=30522, tokens=64, hidden=128))
        result = RollerCompiler(small_chip).compile(graph)
        assert result.ok
        tile = result.op_tiles["g"]
        touched = 64 * 128 * 2
        assert tile.total_load_bytes <= 4 * touched

    def test_oom_when_model_exceeds_chip(self, tiny_chip):
        graph = OperatorGraph(name="big")
        graph.add(matmul("huge", m=2048, k=2048, n=2048))
        result = RollerCompiler(tiny_chip).compile(graph)
        assert not result.ok
        assert result.status == "oom"

    def test_summary(self, small_chip):
        result = RollerCompiler(small_chip).compile(mlp_graph())
        assert "Roller" in result.summary()


class TestAnsorCompiler:
    def test_similar_but_not_faster_than_roller(self, small_chip, small_executor):
        graph = mlp_graph()
        roller = small_executor.evaluate(RollerCompiler(small_chip), graph)
        ansor = small_executor.evaluate(AnsorCompiler(small_chip), graph)
        assert ansor.ok and roller.ok
        assert ansor.latency >= roller.latency * 0.95
        assert ansor.latency <= roller.latency * 1.6


class TestPopARTCompiler:
    def test_slower_than_roller(self, small_chip, small_executor):
        graph = mlp_graph(m=2048, hidden=512)
        roller = small_executor.evaluate(RollerCompiler(small_chip), graph)
        popart = small_executor.evaluate(PopARTCompiler(small_chip), graph)
        assert roller.ok and popart.ok
        assert popart.latency > roller.latency

    def test_fails_on_activation_heavy_model(self, ipu_chip):
        """NeRF's intermediate activations exceed on-chip memory for the vendor runtime."""
        nerf = build_nerf(1)
        result = PopARTCompiler(ipu_chip).compile(nerf)
        assert not result.ok
        roller = RollerCompiler(ipu_chip).compile(nerf)
        assert roller.ok


class TestGPURoofline:
    def test_estimate_positive(self):
        estimate = GPURooflineModel().estimate(mlp_graph())
        assert estimate.total_time > 0
        assert len(estimate.per_op) == 3

    def test_decode_layer_memory_bound(self):
        """LLM decoding at batch 2 is bandwidth-bound on the GPU (paper §6.7)."""
        graph = build_opt(2, size="13b", num_layers=1)
        estimate = GPURooflineModel().estimate(graph)
        assert estimate.memory_bound_fraction > 0.5

    def test_larger_batch_more_compute_bound(self):
        small = GPURooflineModel().estimate(build_opt(2, size="1.3b", num_layers=1))
        large = GPURooflineModel().estimate(build_opt(256, size="1.3b", num_layers=1))
        assert large.memory_bound_fraction <= small.memory_bound_fraction

    def test_latency_grows_sublinearly_with_batch_when_memory_bound(self):
        """Weights dominate HBM traffic, so doubling a tiny batch barely changes latency."""
        model = GPURooflineModel()
        small = model.estimate(build_opt(2, size="13b", num_layers=1)).total_time
        double = model.estimate(build_opt(4, size="13b", num_layers=1)).total_time
        assert double < small * 1.5

    def test_op_estimate_bound_labels(self):
        estimate = GPURooflineModel().estimate(build_opt(2, size="13b", num_layers=1))
        assert {op.bound for op in estimate.per_op} <= {"compute", "memory"}
