"""Tests for the intra-operator Pareto plan search."""

from __future__ import annotations

import pytest

from repro.core import IntraOpOptimizer
from repro.core.constraints import SearchConstraints
from repro.ir import conv2d, library_op, matmul


@pytest.fixture()
def optimizer(small_chip, small_cost_model, fast_constraints):
    return IntraOpOptimizer(small_chip, small_cost_model, fast_constraints)


class TestParetoPlans:
    def test_nonempty_and_sorted_by_memory(self, optimizer):
        plans = optimizer.pareto_plans(matmul("mm", m=256, k=256, n=256))
        assert plans
        memories = [p.memory_bytes for p in plans]
        assert memories == sorted(memories)

    def test_frontier_times_decrease_with_memory(self, optimizer):
        plans = optimizer.pareto_plans(matmul("mm", m=256, k=256, n=256))
        times = [p.time_est for p in plans]
        assert times == sorted(times, reverse=True)

    def test_all_plans_fit_chip(self, optimizer, small_chip):
        plans = optimizer.pareto_plans(matmul("mm", m=256, k=256, n=256))
        assert all(p.memory_bytes <= small_chip.sram_per_core for p in plans)

    def test_no_plan_dominated(self, optimizer):
        plans = optimizer.pareto_plans(matmul("mm", m=256, k=256, n=256))
        for a in plans:
            for b in plans:
                if a is b:
                    continue
                dominated = (
                    b.memory_bytes <= a.memory_bytes
                    and b.time_est <= a.time_est
                    and (b.memory_bytes < a.memory_bytes or b.time_est < a.time_est)
                )
                assert not dominated

    def test_conv_operator_searchable(self, optimizer):
        op = conv2d("c", batch=2, in_channels=8, out_channels=16, height=16, width=16, kernel=3)
        plans = optimizer.pareto_plans(op)
        assert plans
        assert all(p.op_type == "conv2d" for p in plans)

    def test_library_fallback_single_plan(self, optimizer):
        op = library_op("sort", kind="sort", data_bytes=32 * 1024, flops=32 * 1024)
        plans = optimizer.pareto_plans(op)
        assert len(plans) == 1

    def test_infeasible_operator_raises(self, small_cost_model, fast_constraints, tiny_chip):
        optimizer = IntraOpOptimizer(tiny_chip, small_cost_model, fast_constraints)
        # A single operator bigger than the whole chip's memory cannot be planned.
        huge = matmul("huge", m=8192, k=8192, n=8192)
        with pytest.raises(ValueError):
            optimizer.pareto_plans(huge)


class TestCaching:
    def test_identical_operators_share_frontier(self, optimizer):
        first = optimizer.pareto_plans(matmul("a", m=128, k=128, n=128))
        second = optimizer.pareto_plans(matmul("b", m=128, k=128, n=128))
        assert first is second

    def test_clear_cache(self, optimizer):
        first = optimizer.pareto_plans(matmul("a", m=128, k=128, n=128))
        optimizer.clear_cache()
        second = optimizer.pareto_plans(matmul("a", m=128, k=128, n=128))
        assert first is not second


class TestSearchSpaceStats:
    def test_ordering(self, optimizer):
        op = matmul("mm", m=256, k=256, n=256)
        stats = optimizer.search_space_stats(op)
        assert (
            stats.complete
            >= stats.sketched
            >= stats.evaluated
            >= stats.filtered
            >= stats.materialized
            >= stats.optimized
        )
        assert stats.optimized >= 1

    def test_filtered_counts_sram_survivors(self, optimizer, small_chip):
        """``filtered`` is the post-SRAM-filter count, not the evaluated count."""
        op = matmul("mm", m=256, k=256, n=256)
        stats = optimizer.search_space_stats(op)
        candidates = optimizer.enumerate_plans(op)
        fitting = [p for p in candidates if p.memory_bytes <= small_chip.sram_per_core]
        assert stats.evaluated == len(candidates)
        assert stats.filtered == float(len(fitting))

    def test_not_truncated_within_budget(self, optimizer):
        stats = optimizer.search_space_stats(matmul("mm", m=256, k=256, n=256))
        assert not stats.truncated
        assert stats.evaluated < optimizer.constraints.max_plans

    def test_truncated_when_max_plans_caps(self, small_chip, small_cost_model):
        capped = IntraOpOptimizer(
            small_chip,
            small_cost_model,
            SearchConstraints(
                core_count_samples=8,
                max_factorizations_per_target=200,
                max_temporal_combos=32,
                max_plans=10,
            ),
        )
        stats = capped.search_space_stats(matmul("mm", m=256, k=256, n=256))
        assert stats.truncated
        assert stats.evaluated == 10


class TestStreamingMatchesReference:
    """The streaming sketch/prune/materialize search is bit-identical to the
    eager implementation it replaced (kept as ``search_reference``)."""

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: matmul("mm", m=256, k=256, n=256),
            lambda: matmul("skinny", m=8, k=512, n=8),
            lambda: conv2d(
                "c", batch=2, in_channels=8, out_channels=16, height=16, width=16, kernel=3
            ),
            lambda: library_op("sort", kind="sort", data_bytes=32 * 1024, flops=32 * 1024),
        ],
        ids=["matmul", "skinny-matmul", "conv", "library"],
    )
    def test_frontier_bit_identical(self, optimizer, factory):
        reference_plans, reference_stats = optimizer.search_reference(factory())
        plans, stats = optimizer.search_results(factory())
        assert plans == reference_plans
        assert stats.complete == reference_stats.complete
        assert stats.sketched == reference_stats.sketched
        assert stats.evaluated == reference_stats.evaluated
        assert stats.filtered == reference_stats.filtered
        assert stats.optimized == reference_stats.optimized
        assert stats.truncated == reference_stats.truncated

    def test_streaming_materializes_fewer(self, optimizer):
        op = matmul("mm", m=256, k=256, n=256)
        _, reference_stats = optimizer.search_reference(op)
        stats = optimizer.search_space_stats(op)
        assert reference_stats.materialized == reference_stats.evaluated
        assert stats.materialized < reference_stats.materialized


class TestConstraints:
    def test_stricter_constraints_fewer_candidates(self, small_chip, small_cost_model):
        op = matmul("mm", m=256, k=256, n=256)
        strict = IntraOpOptimizer(
            small_chip,
            small_cost_model,
            SearchConstraints(
                core_count_samples=2, max_factorizations_per_target=20, max_temporal_combos=4
            ),
        )
        loose = IntraOpOptimizer(
            small_chip,
            small_cost_model,
            SearchConstraints(
                core_count_samples=8, max_factorizations_per_target=200, max_temporal_combos=32
            ),
        )
        assert strict.search_space_stats(op).evaluated <= loose.search_space_stats(op).evaluated

    def test_best_plan_at_least_as_good_with_bigger_space(self, small_chip, small_cost_model):
        op = matmul("mm", m=256, k=256, n=256)
        strict = IntraOpOptimizer(
            small_chip,
            small_cost_model,
            SearchConstraints(
                core_count_samples=2, max_factorizations_per_target=20, max_temporal_combos=4
            ),
        )
        loose = IntraOpOptimizer(
            small_chip,
            small_cost_model,
            SearchConstraints(
                core_count_samples=8, max_factorizations_per_target=200, max_temporal_combos=32
            ),
        )
        strict_best = min(p.time_est for p in strict.pareto_plans(op))
        loose_best = min(p.time_est for p in loose.pareto_plans(op))
        assert loose_best <= strict_best * 1.01
