"""Tests for the intra-operator Pareto plan search."""

from __future__ import annotations

import pytest

from repro.core import IntraOpOptimizer
from repro.core.constraints import SearchConstraints
from repro.ir import conv2d, library_op, matmul


@pytest.fixture()
def optimizer(small_chip, small_cost_model, fast_constraints):
    return IntraOpOptimizer(small_chip, small_cost_model, fast_constraints)


class TestParetoPlans:
    def test_nonempty_and_sorted_by_memory(self, optimizer):
        plans = optimizer.pareto_plans(matmul("mm", m=256, k=256, n=256))
        assert plans
        memories = [p.memory_bytes for p in plans]
        assert memories == sorted(memories)

    def test_frontier_times_decrease_with_memory(self, optimizer):
        plans = optimizer.pareto_plans(matmul("mm", m=256, k=256, n=256))
        times = [p.time_est for p in plans]
        assert times == sorted(times, reverse=True)

    def test_all_plans_fit_chip(self, optimizer, small_chip):
        plans = optimizer.pareto_plans(matmul("mm", m=256, k=256, n=256))
        assert all(p.memory_bytes <= small_chip.sram_per_core for p in plans)

    def test_no_plan_dominated(self, optimizer):
        plans = optimizer.pareto_plans(matmul("mm", m=256, k=256, n=256))
        for a in plans:
            for b in plans:
                if a is b:
                    continue
                dominated = (
                    b.memory_bytes <= a.memory_bytes
                    and b.time_est <= a.time_est
                    and (b.memory_bytes < a.memory_bytes or b.time_est < a.time_est)
                )
                assert not dominated

    def test_conv_operator_searchable(self, optimizer):
        op = conv2d("c", batch=2, in_channels=8, out_channels=16, height=16, width=16, kernel=3)
        plans = optimizer.pareto_plans(op)
        assert plans
        assert all(p.op_type == "conv2d" for p in plans)

    def test_library_fallback_single_plan(self, optimizer):
        op = library_op("sort", kind="sort", data_bytes=32 * 1024, flops=32 * 1024)
        plans = optimizer.pareto_plans(op)
        assert len(plans) == 1

    def test_infeasible_operator_raises(self, small_cost_model, fast_constraints, tiny_chip):
        optimizer = IntraOpOptimizer(tiny_chip, small_cost_model, fast_constraints)
        # A single operator bigger than the whole chip's memory cannot be planned.
        huge = matmul("huge", m=8192, k=8192, n=8192)
        with pytest.raises(ValueError):
            optimizer.pareto_plans(huge)


class TestCaching:
    def test_identical_operators_share_frontier(self, optimizer):
        first = optimizer.pareto_plans(matmul("a", m=128, k=128, n=128))
        second = optimizer.pareto_plans(matmul("b", m=128, k=128, n=128))
        assert first is second

    def test_clear_cache(self, optimizer):
        first = optimizer.pareto_plans(matmul("a", m=128, k=128, n=128))
        optimizer.clear_cache()
        second = optimizer.pareto_plans(matmul("a", m=128, k=128, n=128))
        assert first is not second


class TestSearchSpaceStats:
    def test_ordering(self, optimizer):
        op = matmul("mm", m=256, k=256, n=256)
        stats = optimizer.search_space_stats(op)
        assert stats.complete >= stats.filtered >= stats.optimized
        assert stats.optimized >= 1

    def test_filtered_matches_evaluated(self, optimizer):
        op = matmul("mm", m=256, k=256, n=256)
        stats = optimizer.search_space_stats(op)
        assert stats.filtered == stats.evaluated


class TestConstraints:
    def test_stricter_constraints_fewer_candidates(self, small_chip, small_cost_model):
        op = matmul("mm", m=256, k=256, n=256)
        strict = IntraOpOptimizer(
            small_chip,
            small_cost_model,
            SearchConstraints(
                core_count_samples=2, max_factorizations_per_target=20, max_temporal_combos=4
            ),
        )
        loose = IntraOpOptimizer(
            small_chip,
            small_cost_model,
            SearchConstraints(
                core_count_samples=8, max_factorizations_per_target=200, max_temporal_combos=32
            ),
        )
        assert strict.search_space_stats(op).evaluated <= loose.search_space_stats(op).evaluated

    def test_best_plan_at_least_as_good_with_bigger_space(self, small_chip, small_cost_model):
        op = matmul("mm", m=256, k=256, n=256)
        strict = IntraOpOptimizer(
            small_chip,
            small_cost_model,
            SearchConstraints(
                core_count_samples=2, max_factorizations_per_target=20, max_temporal_combos=4
            ),
        )
        loose = IntraOpOptimizer(
            small_chip,
            small_cost_model,
            SearchConstraints(
                core_count_samples=8, max_factorizations_per_target=200, max_temporal_combos=32
            ),
        )
        strict_best = min(p.time_est for p in strict.pareto_plans(op))
        loose_best = min(p.time_est for p in loose.pareto_plans(op))
        assert loose_best <= strict_best * 1.01
