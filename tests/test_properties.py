"""Cross-cutting property-based tests on the compiler core.

These generate random small operators and check the invariants every valid
compute-shift plan must satisfy, independent of the specific shapes.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import T10Compiler
from repro.core.intra_op import IntraOpOptimizer
from repro.core.partition import (
    enumerate_operator_partitions,
    tensor_sharing_degree,
    temporal_factor_choices,
)
from repro.core.plan import build_plan
from repro.ir import OperatorGraph, elementwise, matmul
from repro.serving import (
    CostAwareRouter,
    DecodeModel,
    FleetEngine,
    PlanCache,
    decode_workload,
    merge_decode_workloads,
)
from repro.utils import prod

matmul_shapes = st.tuples(
    st.integers(min_value=2, max_value=128),
    st.integers(min_value=2, max_value=128),
    st.integers(min_value=2, max_value=128),
)


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(shape=matmul_shapes)
def test_plan_invariants_for_random_matmuls(shape, small_chip, small_cost_model, fast_constraints):
    """Every plan built from an enumerated F_op satisfies the core invariants."""
    m, k, n = shape
    expr = matmul("mm", m=m, k=k, n=n).expr
    fops = enumerate_operator_partitions(expr, small_chip.num_cores, fast_constraints)
    assert fops
    fop = fops[0]
    temporal = {
        spec.name: temporal_factor_choices(expr, spec, fop, max_choices=3)[-1]
        for spec in expr.all_tensors
    }
    plan = build_plan(expr, small_chip, small_cost_model, fop, temporal)
    if plan is None:
        return
    # Memory, step and timing invariants.
    assert plan.memory_bytes > 0
    assert plan.num_steps >= 1
    assert plan.compute_time_est > 0
    assert plan.comm_time_est >= 0
    assert plan.cores_used == prod(fop.values()) <= small_chip.num_cores
    # The per-step sub-task never exceeds the sub-operator extents.
    for axis, extent in plan.subtask_shape.items():
        assert 1 <= extent <= expr.axes[axis]
    # Per-core tensor partitions never exceed their sub-tensors.
    for config in plan.rtensors.values():
        assert config.partition_bytes <= config.sub_tensor_bytes
        assert config.temporal_factor * config.num_rings == config.sharing_degree
    # Idle (weight-only) footprint is a subset of the full data footprint.
    assert 0 <= plan.idle_bytes <= plan.data_bytes


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(shape=matmul_shapes)
def test_sharing_degrees_cover_all_cores(shape, small_chip, fast_constraints):
    """For every tensor, spatial slices times sharing degree covers all sub-operators."""
    m, k, n = shape
    expr = matmul("mm", m=m, k=k, n=n).expr
    for fop in enumerate_operator_partitions(expr, small_chip.num_cores, fast_constraints)[:5]:
        used = prod(fop.values())
        for spec in expr.all_tensors:
            sharing = tensor_sharing_degree(expr, spec, fop)
            slices = prod(fop[axis] for axis in expr.axes if spec.has_axis(axis))
            assert sharing * slices == used


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    rows=st.integers(min_value=16, max_value=512),
    cols=st.integers(min_value=16, max_value=512),
)
def test_elementwise_pareto_plans_have_no_communication(
    rows, cols, small_chip, small_cost_model, fast_constraints
):
    """Element-wise operators have no shared tensors, hence no shift traffic."""
    optimizer = IntraOpOptimizer(small_chip, small_cost_model, fast_constraints)
    op = elementwise("ew", {"r": rows, "c": cols}, kind="add")
    plans = optimizer.pareto_plans(op)
    assert plans
    for plan in plans:
        assert plan.comm_time_est == 0.0


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(shape=matmul_shapes)
def test_pareto_frontier_is_consistent(shape, small_chip, small_cost_model, fast_constraints):
    """The frontier is sorted, mutually non-dominating and memory-feasible."""
    m, k, n = shape
    optimizer = IntraOpOptimizer(small_chip, small_cost_model, fast_constraints)
    plans = optimizer.pareto_plans(matmul("mm", m=m, k=k, n=n))
    memories = [p.memory_bytes for p in plans]
    times = [p.time_est for p in plans]
    assert memories == sorted(memories)
    assert times == sorted(times, reverse=True)
    assert all(mem <= small_chip.sram_per_core for mem in memories)


# --------------------------------------------------------------------------- #
# Fleet routing determinism
# --------------------------------------------------------------------------- #
def _fleet_builder(name: str, width: int):
    def build(batch_size: int) -> OperatorGraph:
        graph = OperatorGraph(name=f"{name}-b{batch_size}")
        fc1 = graph.add(matmul("fc1", m=batch_size * 8, k=width, n=width))
        act = graph.add(
            elementwise("act", {"m": batch_size * 8, "n": width}, kind="relu"),
            inputs=[fc1],
        )
        graph.add(matmul("fc2", m=batch_size * 8, k=width, n=32), inputs=[act])
        return graph

    return build


def _fleet_models() -> list[DecodeModel]:
    return [
        DecodeModel(
            name="alpha",
            decode_builder=_fleet_builder("alpha", 64),
            max_batch_size=2,
            prefill_chunk=64,
        ),
        DecodeModel(
            name="beta",
            decode_builder=_fleet_builder("beta", 96),
            max_batch_size=2,
            prefill_chunk=64,
        ),
    ]


@pytest.fixture(scope="module")
def fleet_caches(small_cost_model):
    """One warm plan cache per compile parallelism; Hypothesis examples after
    the first hit them warm, so every example is pure simulation."""

    def make(jobs: int) -> PlanCache:
        return PlanCache(
            compiler_factory=lambda chip, constraints: T10Compiler(
                chip, cost_model=small_cost_model, constraints=constraints, jobs=jobs
            ),
        )

    return make(1), make(2)


@settings(max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    counts=st.tuples(
        st.integers(min_value=2, max_value=8),
        st.integers(min_value=2, max_value=8),
        st.integers(min_value=2, max_value=8),
    ),
    seeds=st.tuples(
        st.integers(min_value=0, max_value=20),
        st.integers(min_value=0, max_value=20),
        st.integers(min_value=0, max_value=20),
    ),
    order=st.permutations(range(3)),
)
def test_fleet_routing_is_deterministic(
    counts, seeds, order, fleet_caches, small_chip, fast_constraints
):
    """Per-request placements and the full report are identical whichever
    order the tenant streams are merged in, across fresh engines, and whether
    plans compiled serially or with a two-worker pool (compile time is
    wall-clock only; the virtual timeline never sees it)."""
    serial_cache, parallel_cache = fleet_caches
    streams = [
        decode_workload(
            "alpha",
            num_requests=counts[0],
            rate=2500.0,
            seed=seeds[0],
            tenant="acme",
            slo_seconds=0.05,
            interactive_fraction=0.6,
        ),
        decode_workload(
            "beta",
            num_requests=counts[1],
            rate=1500.0,
            seed=seeds[1],
            tenant="globex",
            slo_seconds=0.08,
            interactive_fraction=0.4,
        ),
        decode_workload(
            "alpha",
            num_requests=counts[2],
            rate=800.0,
            seed=seeds[2],
            tenant="initech",
            interactive_fraction=0.0,
        ),
    ]
    merged = merge_decode_workloads(*streams)
    permuted = merge_decode_workloads(*(streams[i] for i in order))
    assert merged == permuted

    def placements(cache: PlanCache, workload):
        engine = FleetEngine(
            _fleet_models(),
            chip=small_chip,
            num_chips=2,
            constraints=fast_constraints,
            plan_cache=cache,
            router=CostAwareRouter(),
        )
        report = engine.run(workload)
        assert report.total_completed + report.shed == len(workload)
        return [
            (
                record.request.request_id,
                record.status,
                record.replica,
                record.tokens_generated,
                record.completion_time,
            )
            for record in report.completed
        ]

    baseline = placements(serial_cache, merged)
    assert placements(serial_cache, permuted) == baseline
    assert placements(parallel_cache, merged) == baseline
