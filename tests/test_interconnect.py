"""Tests for the chip-to-chip interconnect model."""

from __future__ import annotations

import pytest

from repro.hw.interconnect import (
    IPU_LINK,
    InterconnectConfig,
    InterconnectModel,
    default_interconnect,
)
from repro.hw.spec import IPU_MK2


class TestConfig:
    def test_rejects_bad_bandwidth(self):
        with pytest.raises(ValueError):
            InterconnectConfig(bandwidth=0)

    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError):
            InterconnectConfig(bandwidth=1e9, latency=-1e-6)

    def test_fingerprint_is_stable_and_config_sensitive(self):
        a = InterconnectConfig(bandwidth=1e9, latency=1e-6)
        b = InterconnectConfig(bandwidth=1e9, latency=1e-6)
        c = InterconnectConfig(bandwidth=2e9, latency=1e-6)
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != c.fingerprint()


class TestTransferTime:
    def test_zero_bytes_costs_nothing(self):
        link = InterconnectModel(InterconnectConfig(bandwidth=1e9, latency=1e-6))
        assert link.transfer_time(0) == 0.0

    def test_latency_plus_bandwidth(self):
        link = InterconnectModel(InterconnectConfig(bandwidth=1e9, latency=2e-6))
        assert link.transfer_time(int(1e9)) == pytest.approx(1.0 + 2e-6)

    def test_monotonic_in_bytes(self):
        link = InterconnectModel(IPU_LINK)
        times = [link.transfer_time(n) for n in (1, 1024, 1 << 20, 1 << 30)]
        assert all(a < b for a, b in zip(times, times[1:]))

    def test_rejects_negative_bytes(self):
        link = InterconnectModel(IPU_LINK)
        with pytest.raises(ValueError):
            link.transfer_time(-1)


def test_default_interconnect_uses_chip_bandwidth():
    link = default_interconnect(IPU_MK2)
    assert link.config.bandwidth == IPU_MK2.inter_chip_bandwidth
