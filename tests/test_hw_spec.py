"""Tests for chip/GPU specifications and derived quantities."""

from __future__ import annotations

import pytest

from repro.hw.spec import A100, IPU_MK2, KiB, scaled_ipu, virtual_ipu


class TestIPUPreset:
    def test_core_count(self):
        assert IPU_MK2.num_cores == 1472

    def test_total_sram_about_896mb(self):
        assert IPU_MK2.total_sram == 1472 * 624 * KiB
        assert 850e6 < IPU_MK2.total_sram < 950e6

    def test_total_flops_about_250t(self):
        assert IPU_MK2.total_flops == pytest.approx(250e12, rel=1e-6)

    def test_aggregate_bandwidth_about_8tbs(self):
        assert 7e12 < IPU_MK2.aggregate_link_bandwidth < 9e12

    def test_single_chip_effective_bandwidth(self):
        assert IPU_MK2.effective_link_bandwidth() == IPU_MK2.link_bandwidth


class TestA100Preset:
    def test_peak_flops(self):
        assert A100.peak_flops == pytest.approx(312e12)

    def test_effective_less_than_peak(self):
        assert A100.effective_flops < A100.peak_flops
        assert A100.effective_bandwidth < A100.hbm_bandwidth


class TestScaledIPU:
    def test_with_fewer_cores(self):
        chip = scaled_ipu(368)
        assert chip.num_cores == 368
        assert chip.sram_per_core == IPU_MK2.sram_per_core

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            scaled_ipu(0)

    def test_total_flops_scale_linearly(self):
        assert scaled_ipu(736).total_flops == pytest.approx(IPU_MK2.total_flops / 2)


class TestVirtualIPU:
    def test_two_chips(self):
        chip = virtual_ipu(2)
        assert chip.num_cores == 2944
        assert chip.num_chips == 2

    def test_effective_bandwidth_drops(self):
        single = virtual_ipu(1).effective_link_bandwidth()
        double = virtual_ipu(2).effective_link_bandwidth()
        assert double < single
        # The paper reports a 26%-33% drop; allow a generous band.
        assert double > 0.3 * single

    def test_rejects_zero_chips(self):
        with pytest.raises(ValueError):
            virtual_ipu(0)

    def test_offchip_bandwidth_scales(self):
        assert virtual_ipu(2).offchip_bandwidth == pytest.approx(2 * IPU_MK2.offchip_bandwidth)


class TestWithCores:
    def test_name_changes(self):
        chip = IPU_MK2.with_cores(100)
        assert chip.num_cores == 100
        assert "100c" in chip.name
