"""Shared fixtures for the test suite.

Most tests run against a deliberately small simulated chip (64 cores, 256 KiB
per core) so that plan searches finish in milliseconds; a handful of
integration tests use the full IPU MK2 configuration.
"""

from __future__ import annotations

import os

import pytest

from repro.core import CostModel, SearchConstraints, T10Compiler
from repro.hw.spec import IPU_MK2, ChipSpec, KiB
from repro.runtime import Executor

#: Parallel-compilation width for the shared compiler fixture.  CI runs a
#: second matrix leg with ``REPRO_TEST_JOBS=4`` so the compiles going through
#: ``small_compiler`` exercise the worker-pool path (results are identical by
#: design; see docs/testing.md).  Tests building their own compilers choose
#: their own width.
TEST_JOBS = int(os.environ.get("REPRO_TEST_JOBS", "1"))


@pytest.fixture(scope="session")
def small_chip() -> ChipSpec:
    """A small inter-core connected chip used by most unit tests."""
    return ChipSpec(
        name="test-chip",
        num_cores=64,
        sram_per_core=256 * KiB,
        core_flops=100e9,
        link_bandwidth=5.5e9,
        link_latency=0.4e-6,
        offchip_bandwidth=8e9,
    )


@pytest.fixture(scope="session")
def tiny_chip() -> ChipSpec:
    """An even smaller chip for exhaustive/placement tests."""
    return ChipSpec(
        name="tiny-chip",
        num_cores=8,
        sram_per_core=128 * KiB,
        core_flops=100e9,
        link_bandwidth=5.5e9,
        link_latency=0.4e-6,
        offchip_bandwidth=8e9,
    )


@pytest.fixture(scope="session")
def ipu_chip() -> ChipSpec:
    """The full IPU MK2 configuration."""
    return IPU_MK2


@pytest.fixture(scope="session")
def small_cost_model(small_chip: ChipSpec) -> CostModel:
    """Cost model fitted against the small test chip (shared across tests)."""
    return CostModel.fit(small_chip, samples_per_type=24)


@pytest.fixture(scope="session")
def tiny_cost_model(tiny_chip: ChipSpec) -> CostModel:
    """Cost model fitted against the tiny test chip."""
    return CostModel.fit(tiny_chip, samples_per_type=24)


@pytest.fixture(scope="session")
def ipu_cost_model(ipu_chip: ChipSpec) -> CostModel:
    """Cost model fitted against the full IPU MK2."""
    return CostModel.fit(ipu_chip, samples_per_type=24)


@pytest.fixture(scope="session")
def fast_constraints() -> SearchConstraints:
    """Constraints keeping unit-test plan searches fast."""
    return SearchConstraints(
        min_core_utilization=0.75,
        core_count_samples=4,
        max_factorizations_per_target=80,
        max_temporal_combos=16,
    )


@pytest.fixture()
def small_compiler(small_chip, small_cost_model, fast_constraints) -> T10Compiler:
    """A T10 compiler bound to the small test chip."""
    with T10Compiler(
        small_chip,
        cost_model=small_cost_model,
        constraints=fast_constraints,
        jobs=TEST_JOBS,
    ) as compiler:
        yield compiler


@pytest.fixture()
def small_executor(small_chip) -> Executor:
    """Executor bound to the small test chip."""
    return Executor(small_chip)
