"""Tests for dimension expressions and tensor specs."""

from __future__ import annotations

import pytest

from repro.ir import DType
from repro.ir.tensor import DimExpr, TensorRole, TensorSpec, tensor


class TestDType:
    def test_fp16_bytes(self):
        assert DType.FP16.bytes == 2

    def test_fp32_bytes(self):
        assert DType.FP32.bytes == 4

    def test_from_string(self):
        assert DType.from_string("fp16") is DType.FP16

    def test_from_string_unknown(self):
        with pytest.raises(ValueError):
            DType.from_string("fp8")


class TestDimExpr:
    def test_simple(self):
        dim = DimExpr(("m",))
        assert dim.primary == "m"
        assert not dim.is_compound
        assert str(dim) == "m"

    def test_compound(self):
        dim = DimExpr(("h", "kh"))
        assert dim.primary == "h"
        assert dim.is_compound
        assert str(dim) == "h+kh"

    def test_of_string(self):
        assert DimExpr.of("h+kh") == DimExpr(("h", "kh"))

    def test_of_passthrough(self):
        dim = DimExpr(("m",))
        assert DimExpr.of(dim) is dim

    def test_of_iterable(self):
        assert DimExpr.of(["a", "b"]) == DimExpr(("a", "b"))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            DimExpr(())

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            DimExpr(("m", "m"))


class TestTensorSpec:
    def test_basic(self):
        spec = tensor("A", ["m", "k"])
        assert spec.rank == 2
        assert spec.axes == ("m", "k")
        assert spec.role is TensorRole.INPUT

    def test_primary_axes(self):
        spec = tensor("I", ["b", "c", "h+kh", "w+kw"])
        assert spec.primary_axes == ("b", "c", "h", "w")
        assert spec.axes == ("b", "c", "h", "kh", "w", "kw")

    def test_has_axis_includes_compound_parts(self):
        spec = tensor("I", ["h+kh"])
        assert spec.has_axis("h")
        assert spec.has_axis("kh")
        assert not spec.has_axis("m")

    def test_dim_for_axis(self):
        spec = tensor("A", ["m", "k"])
        assert spec.dim_for_axis("k") == 1
        assert spec.dim_for_axis("n") is None

    def test_str(self):
        spec = tensor("W", ["f", "c"], TensorRole.WEIGHT)
        assert str(spec) == "W[f, c]"

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            TensorSpec(name="", dims=(DimExpr(("m",)),))
