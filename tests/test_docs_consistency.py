"""The docs-consistency gate: passes on this tree, catches each drift mode."""

from repro.experiments import ALL_EXPERIMENTS
from repro.tools.docs_check import (
    REPO_ROOT,
    collect_problems,
    indexed_experiments,
    link_targets,
    main,
    path_refs,
)


def test_repo_tree_is_consistent():
    assert collect_problems() == []


def test_main_exit_code_on_clean_tree(capsys):
    assert main() == 0
    assert "ok" in capsys.readouterr().out


def test_repo_root_points_at_the_repo():
    assert (REPO_ROOT / "README.md").exists()
    assert (REPO_ROOT / "docs" / "architecture.md").exists()


# --- pure parsing helpers ---------------------------------------------------


def test_indexed_experiments_parses_table_rows():
    text = (
        "| Id | What |\n"
        "|---|---|\n"
        "| `fig02` | memory |\n"
        "| `tab02` | models |\n"
        "| `repro.core` | dotted module names are not experiment ids |\n"
        "plain `fig99` outside a table row is not an index entry\n"
    )
    assert indexed_experiments(text) == {"fig02", "tab02"}


def test_link_targets_keeps_relative_drops_external():
    text = (
        "[a](docs/dist.md) [b](https://example.com/x) [c](#anchor) "
        "[d](docs/continuous.md#fig32) [e](mailto:x@y.z)"
    )
    assert link_targets(text) == ["docs/dist.md", "docs/continuous.md"]


def test_path_refs_require_known_prefix_and_extension():
    text = (
        "`tests/golden/fig02.json` and `examples/quickstart.py` count; "
        "`src/repro/experiments/` (no extension) and `other/file.py` "
        "(unknown prefix) do not."
    )
    assert path_refs(text) == ["tests/golden/fig02.json", "examples/quickstart.py"]


# --- each drift mode is detected against a synthetic tree -------------------


def make_tree(tmp_path, architecture, readme="[arch](docs/architecture.md)\n"):
    (tmp_path / "docs").mkdir()
    (tmp_path / "docs" / "architecture.md").write_text(architecture)
    (tmp_path / "README.md").write_text(readme)
    return tmp_path


def full_index():
    return "".join(f"| `{name}` | x | y | z | w |\n" for name in ALL_EXPERIMENTS)


def test_missing_experiment_is_reported(tmp_path):
    rows = "".join(
        f"| `{name}` | x |\n" for name in ALL_EXPERIMENTS if name != "fig32"
    )
    problems = collect_problems(make_tree(tmp_path, rows))
    assert any("'fig32' is missing" in p for p in problems)


def test_orphan_index_entry_is_reported(tmp_path):
    problems = collect_problems(make_tree(tmp_path, full_index() + "| `fig99` | x |\n"))
    assert any("'fig99'" in p and "not a registered experiment" in p for p in problems)


def test_missing_architecture_doc_is_reported(tmp_path):
    (tmp_path / "docs").mkdir()
    (tmp_path / "README.md").write_text("hello\n")
    problems = collect_problems(tmp_path)
    assert any("missing" in p and "architecture.md" in p for p in problems)


def test_broken_link_is_reported(tmp_path):
    root = make_tree(
        tmp_path,
        full_index(),
        readme="[arch](docs/architecture.md) [gone](docs/nonexistent.md)\n",
    )
    problems = collect_problems(root)
    assert any("broken link target 'docs/nonexistent.md'" in p for p in problems)


def test_links_resolve_relative_to_the_linking_file(tmp_path):
    root = make_tree(tmp_path, full_index() + "[readme](../README.md)\n")
    assert collect_problems(root) == []


def test_dangling_path_ref_is_reported(tmp_path):
    root = make_tree(tmp_path, full_index() + "see `tests/golden/fig99.json`\n")
    problems = collect_problems(root)
    assert any("'tests/golden/fig99.json' does not exist" in p for p in problems)


def test_unlinked_docs_page_is_reported(tmp_path):
    root = make_tree(tmp_path, full_index())
    (root / "docs" / "orphan.md").write_text("nobody links me\n")
    problems = collect_problems(root)
    assert any("docs/orphan.md is never linked" in p for p in problems)
