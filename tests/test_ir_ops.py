"""Tests for the operator factory functions."""

from __future__ import annotations

import pytest

from repro.ir import (
    bias_add,
    conv2d,
    elementwise,
    gather,
    layernorm,
    library_op,
    matmul,
    pool2d,
    reduce_sum,
    softmax,
)
from repro.ir.tensor import TensorRole


class TestMatMul:
    def test_unbatched_has_three_axes(self):
        op = matmul("mm", m=4, k=8, n=16)
        assert set(op.axes) == {"m", "k", "n"}

    def test_batched_adds_batch_axis(self):
        op = matmul("mm", m=4, k=8, n=16, batch=3)
        assert op.axes["b"] == 3
        assert op.total_flops == 2 * 3 * 4 * 8 * 16

    def test_weight_stationary_flag(self):
        weighted = matmul("w", m=4, k=4, n=4)
        activation = matmul("a", m=4, k=4, n=4, weight_stationary=False)
        assert weighted.weight_bytes > 0
        assert activation.weight_bytes == 0

    def test_op_type(self):
        assert matmul("mm", m=2, k=2, n=2).op_type == "matmul"


class TestConv2d:
    def test_parameter_count(self):
        op = conv2d("c", batch=1, in_channels=8, out_channels=16, height=4, width=4, kernel=3)
        weight = next(s for s in op.inputs if s.name == "W")
        assert op.expr.tensor_elements(weight) == 16 * 8 * 3 * 3

    def test_weight_role(self):
        op = conv2d("c", batch=1, in_channels=2, out_channels=2, height=4, width=4)
        weight = next(s for s in op.inputs if s.name == "W")
        assert weight.role is TensorRole.WEIGHT


class TestElementwise:
    def test_default_two_inputs(self):
        op = elementwise("add", {"r": 8, "c": 8})
        assert len(op.inputs) == 2

    def test_single_input(self):
        op = elementwise("relu", {"r": 8, "c": 8}, kind="relu", num_inputs=1)
        assert len(op.inputs) == 1
        assert op.op_type == "elementwise_relu"

    def test_rejects_zero_inputs(self):
        with pytest.raises(ValueError):
            elementwise("bad", {"r": 8}, num_inputs=0)


class TestBiasAdd:
    def test_bias_is_weight(self):
        op = bias_add("b", rows=8, cols=16)
        bias = next(s for s in op.inputs if s.name == "B")
        assert bias.role is TensorRole.WEIGHT
        assert op.weight_bytes == 16 * 2


class TestPool:
    def test_no_weights(self):
        op = pool2d("p", batch=1, channels=4, height=8, width=8)
        assert op.weight_bytes == 0

    def test_output_shape(self):
        op = pool2d("p", batch=2, channels=4, height=8, width=8, kernel=2)
        assert op.expr.tensor_shape(op.output) == (2, 4, 8, 8)


class TestReduceSum:
    def test_output_drops_reduced_axis(self):
        op = reduce_sum("s", {"r": 8, "c": 16}, reduce_axes=["c"])
        assert op.expr.tensor_shape(op.output) == (8,)

    def test_full_reduction_keeps_scalar(self):
        op = reduce_sum("s", {"r": 8}, reduce_axes=["r"])
        assert op.expr.tensor_elements(op.output) == 1

    def test_rejects_unknown_axis(self):
        with pytest.raises(ValueError):
            reduce_sum("s", {"r": 8}, reduce_axes=["z"])


class TestGather:
    def test_flops_proportional_to_output(self):
        op = gather("g", vocab=100, tokens=8, hidden=16)
        assert op.total_flops == 8 * 16


class TestSoftmaxLayernorm:
    def test_softmax_shapes(self):
        op = softmax("sm", rows=8, cols=16)
        assert op.expr.tensor_shape(op.output) == (8, 16)

    def test_layernorm_has_scale_and_bias(self):
        op = layernorm("ln", rows=8, cols=16)
        weights = [s for s in op.inputs if s.role is TensorRole.WEIGHT]
        assert len(weights) == 2


class TestLibraryOp:
    def test_marks_fallback(self):
        op = library_op("sort", kind="sort", data_bytes=1024, flops=1024)
        assert op.is_library_fallback

    def test_element_count_from_bytes(self):
        op = library_op("sort", kind="sort", data_bytes=1024, flops=1024)
        assert op.axes["e"] == 512
