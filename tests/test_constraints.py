"""Tests for the intra-operator search constraints."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.constraints import (
    DEFAULT_CONSTRAINTS,
    FAST_CONSTRAINTS,
    THOROUGH_CONSTRAINTS,
    SearchConstraints,
)


class TestValidation:
    def test_defaults_valid(self):
        assert DEFAULT_CONSTRAINTS.min_core_utilization == pytest.approx(0.9)
        assert DEFAULT_CONSTRAINTS.padding_threshold == pytest.approx(0.9)

    @pytest.mark.parametrize("field", ["min_core_utilization", "padding_threshold"])
    @pytest.mark.parametrize("value", [0.0, -0.1, 1.5])
    def test_rejects_bad_fractions(self, field, value):
        with pytest.raises(ValueError):
            SearchConstraints(**{field: value})

    @pytest.mark.parametrize(
        "field",
        [
            "core_count_samples",
            "max_factorizations_per_target",
            "max_temporal_combos",
            "max_plans",
        ],
    )
    def test_rejects_nonpositive_budgets(self, field):
        with pytest.raises(ValueError):
            SearchConstraints(**{field: 0})


class TestPaddingConstraint:
    def test_exact_split_always_ok(self):
        constraints = SearchConstraints(padding_threshold=0.95)
        assert constraints.padding_ok(128, 8)

    def test_excessive_padding_rejected(self):
        constraints = SearchConstraints(padding_threshold=0.9)
        # Splitting 3 into 2 pads to 4: ratio 0.75 < 0.9.
        assert not constraints.padding_ok(3, 2)

    def test_split_larger_than_length_rejected(self):
        assert not DEFAULT_CONSTRAINTS.padding_ok(4, 8)

    def test_zero_parts_rejected(self):
        assert not DEFAULT_CONSTRAINTS.padding_ok(4, 0)

    def test_max_padding_overhead(self):
        constraints = SearchConstraints(padding_threshold=0.9)
        assert constraints.max_padding_overhead() == pytest.approx(1 / 0.9 - 1)

    @given(
        length=st.integers(min_value=1, max_value=4096),
        parts=st.integers(min_value=1, max_value=128),
    )
    def test_property_accepted_splits_respect_threshold(self, length, parts):
        constraints = SearchConstraints(padding_threshold=0.85)
        if constraints.padding_ok(length, parts):
            part_len = -(-length // parts)
            assert length / (part_len * parts) >= 0.85


class TestPresets:
    def test_fast_smaller_budgets_than_default(self):
        assert FAST_CONSTRAINTS.core_count_samples <= DEFAULT_CONSTRAINTS.core_count_samples
        assert (
            FAST_CONSTRAINTS.max_factorizations_per_target
            <= DEFAULT_CONSTRAINTS.max_factorizations_per_target
        )

    def test_thorough_larger_budgets_than_default(self):
        assert (
            THOROUGH_CONSTRAINTS.max_factorizations_per_target
            >= DEFAULT_CONSTRAINTS.max_factorizations_per_target
        )

    def test_relaxed_overrides(self):
        relaxed = DEFAULT_CONSTRAINTS.relaxed(min_core_utilization=0.5)
        assert relaxed.min_core_utilization == pytest.approx(0.5)
        assert relaxed.padding_threshold == DEFAULT_CONSTRAINTS.padding_threshold

    def test_constraints_hashable(self):
        assert hash(DEFAULT_CONSTRAINTS) is not None
        assert DEFAULT_CONSTRAINTS == SearchConstraints()
