"""Tests for forecasting, blueprint planning and fleet scaling
(repro.serving.forecast, repro.serving.planner, FleetEngine ``scaler=``)."""

from __future__ import annotations

import math

import pytest

from repro.serving import (
    Blueprint,
    BlueprintPlanner,
    CostAwareRouter,
    DecodeModel,
    FleetEngine,
    ForecastScaler,
    LeastLoadedRouter,
    LinearTrendForecaster,
    MovingAverageForecaster,
    PlanCache,
    RateTracker,
    ReactiveScaler,
    ScalerObservation,
    TrafficShape,
    decode_workload,
    diurnal_workload,
    chip_death,
    FaultSchedule,
)
from repro.core import T10Compiler

from test_fleet import make_model, tiny_builder


# --------------------------------------------------------------------------- #
# Forecasters
# --------------------------------------------------------------------------- #
class TestForecasters:
    def test_window_validation(self):
        with pytest.raises(ValueError, match="window"):
            MovingAverageForecaster(window=0)

    def test_negative_rate_rejected(self):
        forecaster = MovingAverageForecaster()
        with pytest.raises(ValueError, match="rate"):
            forecaster.observe(-1.0)

    def test_no_observations_predict_zero(self):
        assert MovingAverageForecaster().predict() == 0.0
        assert LinearTrendForecaster().predict(5) == 0.0

    def test_negative_horizon_rejected(self):
        forecaster = MovingAverageForecaster()
        forecaster.observe(1.0)
        with pytest.raises(ValueError, match="steps_ahead"):
            forecaster.predict(-1)

    def test_moving_average_is_flat_at_any_horizon(self):
        forecaster = MovingAverageForecaster(window=4)
        for rate in (2.0, 4.0, 6.0):
            forecaster.observe(rate)
        assert forecaster.predict(1) == pytest.approx(4.0)
        assert forecaster.predict(10) == pytest.approx(4.0)

    def test_window_evicts_oldest(self):
        forecaster = MovingAverageForecaster(window=2)
        for rate in (100.0, 2.0, 4.0):
            forecaster.observe(rate)
        assert forecaster.history == (2.0, 4.0)
        assert forecaster.predict() == pytest.approx(3.0)

    def test_linear_trend_extrapolates_a_ramp_exactly(self):
        forecaster = LinearTrendForecaster(window=8)
        for step in range(5):
            forecaster.observe(10.0 + 3.0 * step)  # 10, 13, 16, 19, 22
        assert forecaster.predict(1) == pytest.approx(25.0)
        assert forecaster.predict(4) == pytest.approx(34.0)

    def test_linear_trend_clamps_decay_at_zero(self):
        forecaster = LinearTrendForecaster(window=8)
        for rate in (8.0, 4.0, 0.0):
            forecaster.observe(rate)
        assert forecaster.predict(10) == 0.0

    def test_linear_trend_single_observation_falls_back_to_mean(self):
        forecaster = LinearTrendForecaster()
        forecaster.observe(7.0)
        assert forecaster.predict(3) == pytest.approx(7.0)

    def test_linear_trend_constant_series_predicts_constant(self):
        forecaster = LinearTrendForecaster(window=4)
        for _ in range(6):
            forecaster.observe(5.0)
        assert forecaster.predict(8) == pytest.approx(5.0)

    def test_reset_drops_history(self):
        forecaster = LinearTrendForecaster()
        forecaster.observe(3.0)
        forecaster.reset()
        assert forecaster.history == ()
        assert forecaster.predict() == 0.0

    def test_determinism(self):
        a, b = LinearTrendForecaster(window=5), LinearTrendForecaster(window=5)
        for rate in (1.0, 5.0, 2.0, 8.0, 3.0, 9.0):
            a.observe(rate)
            b.observe(rate)
        assert a.predict(3) == b.predict(3)


class TestRateTracker:
    def test_window_validation(self):
        with pytest.raises(ValueError, match="window"):
            RateTracker(MovingAverageForecaster(), window=0.0)

    def test_only_completed_windows_are_observed(self):
        tracker = RateTracker(MovingAverageForecaster(), window=10.0)
        tracker.record(1.0)
        tracker.record(2.0)
        assert tracker.pending_count == 2
        assert tracker.forecaster.history == ()  # window [0, 10) still open
        tracker.record(11.0)  # closes [0, 10) with 2 arrivals
        assert tracker.forecaster.history == (0.2,)
        assert tracker.pending_count == 1

    def test_empty_windows_observe_zero(self):
        tracker = RateTracker(MovingAverageForecaster(), window=5.0)
        tracker.record(1.0)
        tracker.record(21.0)  # skips [5,10) and [10,15) and [15,20)
        assert tracker.forecaster.history == (0.2, 0.0, 0.0, 0.0)

    def test_advance_flushes_without_an_arrival(self):
        tracker = RateTracker(MovingAverageForecaster(), window=4.0)
        tracker.record(0.5)
        tracker.advance(8.0)
        assert tracker.forecaster.history == (0.25, 0.0)
        assert tracker.pending_count == 0

    def test_time_must_not_go_backwards(self):
        tracker = RateTracker(MovingAverageForecaster(), window=1.0)
        tracker.record(5.0)
        with pytest.raises(ValueError, match="non-decreasing"):
            tracker.record(4.0)
        with pytest.raises(ValueError, match="non-decreasing"):
            tracker.advance(4.0)

    def test_predict_passes_through(self):
        tracker = RateTracker(LinearTrendForecaster(), window=2.0)
        for t in (0.0, 0.5, 2.5, 3.0, 3.5, 4.5):
            tracker.record(t)
        tracker.advance(6.0)
        assert tracker.predict(1) == tracker.forecaster.predict(1)


# --------------------------------------------------------------------------- #
# Blueprint planning
# --------------------------------------------------------------------------- #
def flat_price(model: str, num_stages: int, bucket: int) -> float:
    """A pure price function: 1ms iterations regardless of bucket."""
    return 1e-3


@pytest.fixture()
def planner_model() -> DecodeModel:
    return make_model("alpha", max_batch_size=4)


class TestBlueprintPlanner:
    def test_validation(self, planner_model):
        with pytest.raises(ValueError, match="max_replicas"):
            BlueprintPlanner(flat_price, [planner_model], max_replicas=0)
        with pytest.raises(ValueError, match="stage_options"):
            BlueprintPlanner(
                flat_price, [planner_model], max_replicas=1, stage_options=(0,)
            )
        with pytest.raises(ValueError, match="headroom"):
            BlueprintPlanner(flat_price, [planner_model], max_replicas=1, headroom=0.5)

    def test_candidates_enumerate_replicas_by_buckets(self, planner_model):
        planner = BlueprintPlanner(flat_price, [planner_model], max_replicas=3)
        candidates = planner.candidates("alpha", TrafficShape())
        # buckets(4) = {1, 2, 4} x 3 replica counts x 1 stage option.
        assert len(candidates) == 9
        chips = [bp.chips for bp in candidates]
        assert chips == sorted(chips)  # cheapest first

    def test_capacity_and_latency_pricing(self, planner_model):
        planner = BlueprintPlanner(flat_price, [planner_model], max_replicas=2)
        shape = TrafficShape(mean_prompt=64, mean_output=16)
        iters = planner_model.ideal_iterations(64, 16)
        for bp in planner.candidates("alpha", shape):
            assert bp.iteration_latency == pytest.approx(1e-3)
            assert bp.request_latency == pytest.approx(iters * 1e-3)
            assert bp.capacity_rps == pytest.approx(
                bp.replicas * bp.bucket / (iters * 1e-3)
            )
            assert bp.chips == bp.replicas * bp.num_stages

    def test_plan_picks_cheapest_feasible(self, planner_model):
        planner = BlueprintPlanner(
            flat_price, [planner_model], max_replicas=4, headroom=1.0
        )
        shape = TrafficShape(mean_prompt=64, mean_output=16)
        one_replica_rate = planner.candidates("alpha", shape)[0].capacity_rps
        # A rate a single bucket-1 replica cannot serve but a bigger bucket
        # or second replica can: the planner stays at the cheapest chips.
        blueprint = planner.plan("alpha", one_replica_rate * 2.5, shape)
        assert blueprint.replicas == 1
        assert blueprint.bucket == 4

    def test_plan_respects_slo_gate(self, planner_model):
        # Price grows with bucket, so big buckets blow the deadline.
        def bucket_price(model, num_stages, bucket):
            return 1e-3 * bucket

        planner = BlueprintPlanner(
            bucket_price, [planner_model], max_replicas=4, headroom=1.0
        )
        iters = planner_model.ideal_iterations(64, 16)
        shape = TrafficShape(
            mean_prompt=64, mean_output=16, slo_seconds=1.5 * iters * 1e-3
        )
        rate = 3.0 * 1 / (iters * 1e-3)  # needs >1 bucket-1 replica
        blueprint = planner.plan("alpha", rate, shape)
        assert blueprint.request_latency <= shape.slo_seconds
        assert blueprint.bucket == 1  # buckets 2/4 violate the SLO
        assert blueprint.replicas >= 3

    def test_plan_saturates_when_infeasible(self, planner_model):
        planner = BlueprintPlanner(flat_price, [planner_model], max_replicas=2)
        shape = TrafficShape()
        blueprint = planner.plan("alpha", 1e12, shape)
        best = max(
            planner.candidates("alpha", shape), key=lambda bp: bp.capacity_rps
        )
        assert blueprint.capacity_rps == best.capacity_rps

    def test_plan_rejects_negative_rate(self, planner_model):
        planner = BlueprintPlanner(flat_price, [planner_model], max_replicas=1)
        with pytest.raises(ValueError, match="rate"):
            planner.plan("alpha", -1.0, TrafficShape())

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="mean_prompt"):
            TrafficShape(mean_prompt=0)
        with pytest.raises(ValueError, match="slo_seconds"):
            TrafficShape(slo_seconds=0.0)


# --------------------------------------------------------------------------- #
# Scaler policies (pure plan() math, no engine)
# --------------------------------------------------------------------------- #
def observation(**overrides) -> ScalerObservation:
    base = dict(
        now=0.0,
        provisioned=2,
        booting=0,
        num_replicas=4,
        queued=0,
        resident=0,
        busy=0,
        arrivals={},
        interval=1.0,
    )
    base.update(overrides)
    return ScalerObservation(**base)


class TestReactiveScaler:
    def test_validation(self):
        with pytest.raises(ValueError, match="interval"):
            ReactiveScaler(interval=0.0)
        with pytest.raises(ValueError, match="provision_delay"):
            ReactiveScaler(interval=1.0, provision_delay=-1.0)
        with pytest.raises(ValueError, match="min_replicas"):
            ReactiveScaler(interval=1.0, min_replicas=0)
        with pytest.raises(ValueError, match="scale_up_queue"):
            ReactiveScaler(interval=1.0, scale_up_queue=0)

    def test_scales_up_on_queue_depth(self):
        scaler = ReactiveScaler(interval=1.0, scale_up_queue=4)
        assert scaler.plan(observation(queued=9)) == 2 + math.ceil(9 / 4)
        # Booting capacity counts: no double-ordering while boots are in flight.
        assert scaler.plan(observation(queued=4, booting=1)) == 4

    def test_scales_down_to_busy_when_queue_empty(self):
        scaler = ReactiveScaler(interval=1.0, scale_up_queue=4)
        assert scaler.plan(observation(provisioned=4, busy=2)) == 2
        # min_replicas floors the release.
        assert scaler.plan(observation(provisioned=4, busy=0)) == 1


class TestForecastScaler:
    def make(self, planner_model, **kwargs) -> ForecastScaler:
        planner = BlueprintPlanner(
            flat_price, [planner_model], max_replicas=8, headroom=1.0
        )
        shape = TrafficShape(mean_prompt=64, mean_output=16)
        defaults = dict(interval=1.0, provision_delay=2.0, hold_ticks=1)
        defaults.update(kwargs)
        return ForecastScaler(planner, {"alpha": shape}, **defaults)

    def test_needs_shapes(self, planner_model):
        planner = BlueprintPlanner(flat_price, [planner_model], max_replicas=1)
        with pytest.raises(ValueError, match="shape"):
            ForecastScaler(planner, {}, interval=1.0)

    def test_steps_ahead_covers_the_provision_delay(self, planner_model):
        assert self.make(planner_model, provision_delay=0.0).steps_ahead == 1
        assert self.make(planner_model, provision_delay=2.5).steps_ahead == 3

    def test_no_traffic_plans_the_floor(self, planner_model):
        scaler = self.make(planner_model, min_replicas=2)
        assert scaler.plan(observation(arrivals={"alpha": 0})) == 2

    def test_ramp_raises_the_target_ahead_of_the_load(self, planner_model):
        scaler = self.make(planner_model)
        iters = planner_model.ideal_iterations(64, 16)
        per_replica = 4 / (iters * 1e-3)  # bucket-4 capacity of one replica
        targets = []
        for tick in range(5):
            rate = per_replica * (0.5 + tick)  # steep ramp in capacity units
            count = int(rate * 1.0)
            targets.append(scaler.plan(observation(arrivals={"alpha": count})))
        assert targets[-1] > targets[0]
        # The trend forecaster plans past the last observation: the final
        # target covers more than the last observed rate alone needs.
        assert targets[-1] >= math.ceil((per_replica * 4.5) / per_replica)

    def test_hold_ticks_resists_a_noisy_dip(self, planner_model):
        scaler = self.make(planner_model, hold_ticks=3, provision_delay=0.0)
        iters = planner_model.ideal_iterations(64, 16)
        per_replica = 4 / (iters * 1e-3)
        high = scaler.plan(observation(arrivals={"alpha": int(4 * per_replica)}))
        dip = scaler.plan(observation(arrivals={"alpha": 0}))
        assert dip >= high  # held up by the recent high-water mark
        scaler.plan(observation(arrivals={"alpha": 0}))
        low = scaler.plan(observation(arrivals={"alpha": 0}))
        assert low == scaler.min_replicas  # the hold window has drained

    def test_hold_ticks_validation(self, planner_model):
        with pytest.raises(ValueError, match="hold_ticks"):
            self.make(planner_model, hold_ticks=0)


# --------------------------------------------------------------------------- #
# FleetEngine integration: the scaler drives paid provisioning
# --------------------------------------------------------------------------- #
@pytest.fixture()
def cache(small_cost_model, fast_constraints):
    return PlanCache(
        compiler_factory=lambda chip, constraints: T10Compiler(
            chip, cost_model=small_cost_model, constraints=constraints
        ),
    )


def scaled_engine(cache, small_chip, fast_constraints, **kwargs) -> FleetEngine:
    kwargs.setdefault("router", CostAwareRouter())
    kwargs.setdefault("num_chips", 3)
    return FleetEngine(
        [make_model("alpha", max_batch_size=2)],
        chip=small_chip,
        constraints=fast_constraints,
        plan_cache=cache,
        **kwargs,
    )


def steady_workload(num_requests: int = 60, rate: float = 400.0):
    return decode_workload(
        "alpha", num_requests=num_requests, rate=rate, seed=0, slo_seconds=1.0
    )


class TestFleetScaling:
    def test_scaler_and_faults_do_not_compose(self, cache, small_chip, fast_constraints):
        engine = scaled_engine(cache, small_chip, fast_constraints)
        engine.warm()
        scaler = ReactiveScaler(interval=0.01)
        faults = FaultSchedule([chip_death(time=0.1, chip=0)])
        with pytest.raises(ValueError, match="not yet composable"):
            engine.run(steady_workload(), scaler=scaler, faults=faults)

    def test_scaler_needs_health_aware_router(self, cache, small_chip, fast_constraints):
        engine = scaled_engine(
            cache, small_chip, fast_constraints, router=LeastLoadedRouter()
        )
        engine.warm()
        with pytest.raises(ValueError, match="health-aware"):
            engine.run(steady_workload(), scaler=ReactiveScaler(interval=0.01))

    def test_no_scaler_keeps_free_instant_provisioning(
        self, cache, small_chip, fast_constraints
    ):
        engine = scaled_engine(cache, small_chip, fast_constraints)
        engine.warm()
        report = engine.run(steady_workload())
        assert report.provision_ups == report.provision_downs == 0
        # Without a scaler, what was active is what was provisioned (free).
        assert report.provisioned_chip_seconds == pytest.approx(
            report.active_chip_seconds
        )

    def test_reactive_scaler_run_balances_and_pays(
        self, cache, small_chip, fast_constraints
    ):
        engine = scaled_engine(cache, small_chip, fast_constraints)
        engine.warm()
        report = engine.run(
            steady_workload(),
            scaler=ReactiveScaler(interval=0.005, provision_delay=0.01),
        )
        assert report.total_completed + report.shed == 60
        assert report.provisioned_chip_seconds > 0
        assert report.peak_provisioned_chips <= 3
        # Capacity held (provisioned or booting) costs at least what ran.
        assert report.provisioned_chip_seconds >= report.active_chip_seconds

    def test_forecast_scaler_run_provisions_up_and_down(
        self, cache, small_chip, fast_constraints
    ):
        engine = scaled_engine(cache, small_chip, fast_constraints)
        engine.warm()
        planner = BlueprintPlanner.for_engine(engine)
        # Express load in the engine's own capacity units so the diurnal
        # peak genuinely needs more than one replica and the trough less.
        mean_iters = engine.deployments[0].ideal_iterations(72, 26)
        replica_rate = 2 / (mean_iters * engine.iteration_latency("alpha", 2))
        interval = 20 * engine.iteration_latency("alpha", 1)
        duration = 60 * interval
        workload = diurnal_workload(
            "alpha",
            base_rate=2.0 * replica_rate,
            period=duration,
            amplitude=0.9,
            duration=duration,
            seed=5,
        )
        scaler = ForecastScaler(
            planner,
            {"alpha": TrafficShape(mean_prompt=72, mean_output=26)},
            interval=interval,
            provision_delay=2 * interval,
            hold_ticks=1,
        )
        report = engine.run(workload, scaler=scaler)
        assert report.total_completed + report.shed == len(workload)
        assert report.provision_ups > 0
        assert report.provision_downs > 0
        assert 0 < report.mean_provisioned_chips <= 3

    def test_scaled_runs_replay_bit_identically(
        self, cache, small_chip, fast_constraints
    ):
        def one_run():
            engine = scaled_engine(cache, small_chip, fast_constraints)
            engine.warm()
            report = engine.run(
                steady_workload(),
                scaler=ReactiveScaler(interval=0.005, provision_delay=0.01),
            )
            return [
                (r.request.request_id, r.replica, r.tokens_generated, r.completion_time)
                for r in report.completed
            ]

        assert one_run() == one_run()

    def test_min_replicas_bounds_the_initial_fleet(
        self, cache, small_chip, fast_constraints
    ):
        engine = scaled_engine(cache, small_chip, fast_constraints)
        engine.warm()
        report = engine.run(
            steady_workload(num_requests=20, rate=200.0),
            scaler=ReactiveScaler(interval=0.005, min_replicas=3),
        )
        # The floor holds the whole fleet provisioned: nothing to release.
        assert report.provision_downs == 0
        assert report.peak_provisioned_chips == 3
