"""Property-based tests for the stable fingerprints behind the plan cache.

The cache key must be *stable* (same content, same key — regardless of build
order or process) and *sensitive* (any change to shapes, dtypes, ops, edges,
chip resources or search constraints changes the key).
"""

from __future__ import annotations

import dataclasses
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.constraints import SearchConstraints
from repro.hw.spec import ChipSpec, KiB
from repro.ir import OperatorGraph, elementwise, matmul
from repro.ir.dtype import DType
from repro.utils import canonicalize, stable_hash

dims = st.integers(min_value=2, max_value=256)


def build_chain(m: int, k: int, n: int, *, dtype: DType = DType.FP16) -> OperatorGraph:
    """A matmul -> relu -> matmul chain."""
    graph = OperatorGraph(name="chain")
    fc1 = graph.add(matmul("fc1", m=m, k=k, n=n, dtype=dtype))
    act = graph.add(
        elementwise("act", {"m": m, "n": n}, kind="relu", dtype=dtype), inputs=[fc1]
    )
    graph.add(matmul("fc2", m=m, k=n, n=k, dtype=dtype), inputs=[act])
    return graph


@settings(max_examples=25, deadline=None)
@given(shape=st.tuples(dims, dims, dims))
def test_build_order_does_not_change_fingerprint(shape):
    """Adding the same operators/edges in different orders yields one fingerprint."""
    m, k, n = shape
    forward = OperatorGraph(name="a")
    fc1 = forward.add(matmul("fc1", m=m, k=k, n=n))
    side = forward.add(elementwise("side", {"m": m, "n": n}, kind="relu"))
    forward.add(elementwise("join", {"m": m, "n": n}, kind="add"), inputs=[fc1, side])

    shuffled = OperatorGraph(name="b")
    shuffled.add(elementwise("side", {"m": m, "n": n}, kind="relu"))
    shuffled.add(matmul("fc1", m=m, k=k, n=n))
    shuffled.add(elementwise("join", {"m": m, "n": n}, kind="add"), inputs=["side", "fc1"])

    assert forward.fingerprint() == shuffled.fingerprint()


@settings(max_examples=25, deadline=None)
@given(shape=st.tuples(dims, dims, dims), bump=st.integers(min_value=1, max_value=16))
def test_any_shape_change_changes_fingerprint(shape, bump):
    m, k, n = shape
    base = build_chain(m, k, n)
    grown = build_chain(m + bump, k, n)
    assert base.fingerprint() != grown.fingerprint()


@settings(max_examples=10, deadline=None)
@given(shape=st.tuples(dims, dims, dims))
def test_dtype_change_changes_fingerprint(shape):
    m, k, n = shape
    assert (
        build_chain(m, k, n, dtype=DType.FP16).fingerprint()
        != build_chain(m, k, n, dtype=DType.FP32).fingerprint()
    )


@settings(max_examples=10, deadline=None)
@given(shape=st.tuples(dims, dims, dims))
def test_op_change_changes_fingerprint(shape):
    m, k, n = shape
    with_relu = OperatorGraph(name="g")
    with_relu.add(elementwise("op", {"m": m, "n": n}, kind="relu"))
    with_gelu = OperatorGraph(name="g")
    with_gelu.add(elementwise("op", {"m": m, "n": n}, kind="gelu"))
    with_matmul = OperatorGraph(name="g")
    with_matmul.add(matmul("op", m=m, k=k, n=n))
    prints = {
        with_relu.fingerprint(),
        with_gelu.fingerprint(),
        with_matmul.fingerprint(),
    }
    assert len(prints) == 3


@settings(max_examples=10, deadline=None)
@given(shape=st.tuples(dims, dims, dims))
def test_edges_matter_to_fingerprint(shape):
    """Same node set, different wiring => different fingerprint."""
    m, k, n = shape
    chained = OperatorGraph(name="g")
    a = chained.add(elementwise("a", {"m": m, "n": n}, kind="relu"))
    chained.add(elementwise("b", {"m": m, "n": n}, kind="relu"), inputs=[a])
    detached = OperatorGraph(name="g")
    detached.add(elementwise("a", {"m": m, "n": n}, kind="relu"))
    detached.add(elementwise("b", {"m": m, "n": n}, kind="relu"))
    assert chained.fingerprint() != detached.fingerprint()


def test_graph_name_does_not_change_fingerprint():
    one = build_chain(8, 16, 32)
    other = build_chain(8, 16, 32)
    other.name = "renamed"
    assert one.fingerprint() == other.fingerprint()


# --------------------------------------------------------------------------- #
# Chip and constraint fingerprints
# --------------------------------------------------------------------------- #
@settings(max_examples=20, deadline=None)
@given(
    cores=st.integers(min_value=1, max_value=4096),
    sram=st.integers(min_value=1, max_value=1024),
)
def test_chip_fingerprint_sensitive_to_every_resource(cores, sram):
    base = ChipSpec(
        name="chip",
        num_cores=cores,
        sram_per_core=sram * KiB,
        core_flops=1e9,
        link_bandwidth=1e9,
        link_latency=1e-6,
        offchip_bandwidth=1e9,
    )
    assert base.fingerprint() == dataclasses.replace(base).fingerprint()
    for change in (
        {"num_cores": cores + 1},
        {"sram_per_core": (sram + 1) * KiB},
        {"core_flops": 2e9},
        {"link_bandwidth": 2e9},
        {"name": "other"},
    ):
        assert base.fingerprint() != dataclasses.replace(base, **change).fingerprint()


def test_constraints_fingerprint_sensitive_to_fields():
    base = SearchConstraints()
    assert base.fingerprint() == SearchConstraints().fingerprint()
    assert base.fingerprint() != base.relaxed(max_plans=77).fingerprint()
    assert base.fingerprint() != base.relaxed(padding_threshold=0.5).fingerprint()


# --------------------------------------------------------------------------- #
# Cross-process stability (the property pickle-on-disk caching depends on)
# --------------------------------------------------------------------------- #
def test_fingerprints_stable_across_processes():
    """Hash randomization (PYTHONHASHSEED) must not leak into fingerprints."""
    script = textwrap.dedent(
        """
        from repro.hw.spec import IPU_MK2
        from repro.ir import OperatorGraph, elementwise, matmul

        graph = OperatorGraph(name="x")
        fc = graph.add(matmul("fc", m=8, k=16, n=32))
        graph.add(elementwise("act", {"m": 8, "n": 32}, kind="relu"), inputs=[fc])
        print(graph.fingerprint(), IPU_MK2.fingerprint())
        """
    )
    src = str(Path(__file__).resolve().parents[1] / "src")
    outputs = set()
    for seed in ("0", "12345"):
        env = dict(os.environ, PYTHONPATH=src, PYTHONHASHSEED=seed)
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
            env=env,
        )
        outputs.add(result.stdout.strip())
    assert len(outputs) == 1


# --------------------------------------------------------------------------- #
# canonicalize()
# --------------------------------------------------------------------------- #
def test_canonicalize_orders_sets_and_mappings():
    assert canonicalize({"b": 1, "a": 2}) == canonicalize({"a": 2, "b": 1})
    assert canonicalize(frozenset({"x", "y", "z"})) == canonicalize(
        frozenset({"z", "y", "x"})
    )
    assert canonicalize((1, 2)) != canonicalize((2, 1))
    assert stable_hash([1, "a"]) == stable_hash((1, "a"))
    assert stable_hash(1) != stable_hash("1")


def test_canonicalize_rejects_unknown_types():
    with pytest.raises(TypeError):
        canonicalize(object())
