"""Tests for compute-shift plan construction and its analytical metrics."""

from __future__ import annotations

import pytest

from repro.core.plan import build_library_plan, build_plan, sketch_plan
from repro.ir import conv2d, library_op, matmul
from repro.ir.tensor import TensorRole


@pytest.fixture()
def mm_expr():
    return matmul("mm", m=64, k=64, n=64).expr


def plan_for(expr, chip, cost_model, fop, temporal):
    plan = build_plan(expr, chip, cost_model, fop, temporal)
    assert plan is not None
    return plan


class TestBasicInvariants:
    def test_replicated_plan_has_no_shifts(self, mm_expr, small_chip, small_cost_model):
        plan = plan_for(
            mm_expr, small_chip, small_cost_model,
            {"m": 64, "k": 1, "n": 1}, {"A": 1, "B": 1, "C": 1},
        )
        assert plan.num_steps == 1
        assert plan.comm_time_est == 0.0
        assert plan.shift_ops == ()
        assert plan.cores_used == 64

    def test_rotated_plan_has_shifts(self, mm_expr, small_chip, small_cost_model):
        plan = plan_for(
            mm_expr, small_chip, small_cost_model,
            {"m": 64, "k": 1, "n": 1}, {"A": 1, "B": 8, "C": 1},
        )
        assert plan.num_steps > 1
        assert plan.comm_time_est > 0
        assert any(op.tensor_name == "B" for op in plan.shift_ops)

    def test_temporal_split_trades_memory_for_communication(
        self, mm_expr, small_chip, small_cost_model
    ):
        """The core trade-off of the paper: more temporal splitting, less memory, more shifts."""
        fop = {"m": 64, "k": 1, "n": 1}
        replicated = plan_for(mm_expr, small_chip, small_cost_model, fop, {"A": 1, "B": 1, "C": 1})
        split = plan_for(mm_expr, small_chip, small_cost_model, fop, {"A": 1, "B": 8, "C": 1})
        assert split.memory_bytes < replicated.memory_bytes
        assert split.comm_time_est > replicated.comm_time_est

    def test_memory_includes_shift_buffer(self, mm_expr, small_chip, small_cost_model):
        plan = plan_for(
            mm_expr, small_chip, small_cost_model,
            {"m": 64, "k": 1, "n": 1}, {"A": 1, "B": 1, "C": 1},
        )
        assert plan.memory_bytes == plan.data_bytes + small_chip.shift_buffer_bytes

    def test_idle_bytes_only_counts_weights(self, mm_expr, small_chip, small_cost_model):
        plan = plan_for(
            mm_expr, small_chip, small_cost_model,
            {"m": 64, "k": 1, "n": 1}, {"A": 1, "B": 1, "C": 1},
        )
        weight_bytes = sum(
            cfg.partition_bytes
            for cfg in plan.rtensors.values()
            if cfg.spec.role is TensorRole.WEIGHT
        )
        assert plan.idle_bytes == weight_bytes
        assert plan.idle_bytes < plan.data_bytes

    def test_too_many_cores_rejected(self, mm_expr, small_chip, small_cost_model):
        assert (
            build_plan(
                mm_expr,
                small_chip,
                small_cost_model,
                {"m": 64, "k": 2, "n": 1},
                {"A": 1, "B": 1, "C": 1},
            )
            is None
        )

    def test_infeasible_temporal_rejected(self, small_chip, small_cost_model):
        expr = matmul("mm", m=64, k=2, n=2).expr
        assert (
            build_plan(
                expr, small_chip, small_cost_model,
                {"m": 32, "k": 1, "n": 1}, {"A": 1, "B": 16, "C": 1},
            )
            is None
        )

    def test_describe(self, mm_expr, small_chip, small_cost_model):
        plan = plan_for(
            mm_expr, small_chip, small_cost_model,
            {"m": 8, "k": 1, "n": 8}, {"A": 1, "B": 1, "C": 1},
        )
        assert "matmul" in plan.describe()


class TestFigure7Example:
    """The worked MatMul example of paper §4.2 / Figure 7."""

    def test_step_count_and_subtask(self, small_chip, small_cost_model):
        expr = matmul("mm", m=2, k=6, n=3).expr
        fop = {"m": 2, "k": 1, "n": 3}
        plan = plan_for(expr, small_chip, small_cost_model, fop, {"A": 3, "B": 2, "C": 1})
        # rp on k is min(6/3, 6/2) = 2, so the sub-operator needs 6/2 = 3 steps.
        assert plan.rotation_paces == {"k": 2}
        assert plan.num_steps == 3
        assert plan.subtask_shape == {"m": 1, "k": 2, "n": 1}
        assert plan.cores_used == 6


class TestReductionHandling:
    def test_split_reduction_adds_merge_traffic(self, mm_expr, small_chip, small_cost_model):
        no_split = plan_for(
            mm_expr, small_chip, small_cost_model,
            {"m": 8, "k": 1, "n": 8}, {"A": 1, "B": 1, "C": 1},
        )
        split = plan_for(
            mm_expr, small_chip, small_cost_model,
            {"m": 8, "k": 8, "n": 1}, {"A": 1, "B": 1, "C": 1},
        )
        assert any("partial" in op.tensor_name for op in split.shift_ops)
        assert not any("partial" in op.tensor_name for op in no_split.shift_ops)


class TestSetupBytes:
    def test_setup_zero_from_same_plan(self, mm_expr, small_chip, small_cost_model):
        plan = plan_for(
            mm_expr, small_chip, small_cost_model,
            {"m": 64, "k": 1, "n": 1}, {"A": 1, "B": 1, "C": 1},
        )
        assert plan.setup_bytes_from(plan) == 0

    def test_setup_from_smaller_idle_is_positive(self, mm_expr, small_chip, small_cost_model):
        fop = {"m": 64, "k": 1, "n": 1}
        idle = plan_for(mm_expr, small_chip, small_cost_model, fop, {"A": 1, "B": 8, "C": 1})
        active = plan_for(mm_expr, small_chip, small_cost_model, fop, {"A": 1, "B": 1, "C": 1})
        assert active.setup_bytes_from(idle) > 0
        assert active.setup_bytes_from(None) >= active.setup_bytes_from(idle)

    def test_setup_counts_only_weights(self, mm_expr, small_chip, small_cost_model):
        fop = {"m": 64, "k": 1, "n": 1}
        active = plan_for(mm_expr, small_chip, small_cost_model, fop, {"A": 1, "B": 1, "C": 1})
        weight_partition = sum(
            cfg.partition_bytes
            for cfg in active.rtensors.values()
            if cfg.spec.role is TensorRole.WEIGHT
        )
        assert active.setup_bytes_from(None) == weight_partition


class TestConvPlans:
    def test_conv_plan_builds_with_halo(self, small_chip, small_cost_model):
        expr = conv2d(
            "conv", batch=4, in_channels=8, out_channels=16, height=16, width=16, kernel=3
        ).expr
        plan = build_plan(
            expr,
            small_chip,
            small_cost_model,
            {"b": 4, "f": 4, "c": 1, "h": 2, "w": 2, "kh": 1, "kw": 1},
            {spec.name: 1 for spec in expr.all_tensors},
        )
        assert plan is not None
        input_cfg = plan.rtensors["I"]
        # The per-core input slice includes the kernel halo.
        assert input_cfg.sub_tensor_shape[2] == 16 // 2 + 2
        assert plan.memory_bytes > 0


class TestLibraryPlan:
    def test_library_plan_has_no_shifts(self, small_chip, small_cost_model):
        op = library_op("sort", kind="sort", data_bytes=64 * 1024, flops=64 * 1024)
        plan = build_library_plan(op.expr, small_chip, small_cost_model)
        assert plan.shift_ops == ()
        assert plan.num_steps == 1
        assert plan.cores_used <= small_chip.num_cores
        assert plan.time_est > 0


class TestPlanSketch:
    """The cheap sketch agrees exactly with full plan construction.

    ``build_plan`` itself is implemented as sketch-then-materialize, so the
    feasibility/memory/pace comparisons run against an *independent* oracle
    built straight from the rTensor machinery (``derive_rtensor`` +
    ``align_rotation_paces`` — the seed implementation's derivation path),
    not against ``build_plan``.
    """

    @staticmethod
    def _rtensor_oracle(expr, chip, fop, temporal):
        """Feasibility, memory and paces from the rTensor derivation alone."""
        from repro.core.partition import align_rotation_paces, derive_rtensor
        from repro.utils import prod

        if prod(fop.values()) > chip.num_cores:
            return None
        configs = {}
        for spec in expr.all_tensors:
            config = derive_rtensor(expr, spec, fop, temporal.get(spec.name, 1))
            if config is None:
                return None
            configs[spec.name] = config
        configs, paces = align_rotation_paces(expr, configs, fop)
        memory = sum(c.partition_bytes for c in configs.values()) + chip.shift_buffer_bytes
        return memory, paces

    def _all_candidates(self, operator, chip, constraints):
        from repro.core.partition import enumerate_operator_partitions

        expr = operator.expr
        names = [spec.name for spec in expr.all_tensors]
        for fop in enumerate_operator_partitions(expr, chip.num_cores, constraints):
            for factor in (1, 2, 4, 8):
                yield fop, dict.fromkeys(names, factor)

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: matmul("mm", m=96, k=48, n=64),
            lambda: conv2d(
                "c", batch=2, in_channels=8, out_channels=16, height=16, width=16, kernel=3
            ),
        ],
        ids=["matmul", "conv"],
    )
    def test_sketch_matches_build_plan(
        self, factory, small_chip, small_cost_model, fast_constraints
    ):
        operator = factory()
        expr = operator.expr
        feasible = infeasible = 0
        for fop, temporal in self._all_candidates(operator, small_chip, fast_constraints):
            sketch = sketch_plan(expr, small_chip, fop, temporal)
            oracle = self._rtensor_oracle(expr, small_chip, fop, temporal)
            if oracle is None:
                infeasible += 1
                assert sketch is None  # identical feasibility verdicts
                continue
            feasible += 1
            assert sketch is not None
            oracle_memory, oracle_paces = oracle
            assert sketch.memory_bytes == oracle_memory
            assert sketch.rotation_paces == oracle_paces
            plan = build_plan(expr, small_chip, small_cost_model, fop, temporal)
            assert plan is not None
            # Exact structural agreement, computed without rTensors.
            assert sketch.memory_bytes == plan.memory_bytes
            assert sketch.num_steps == plan.num_steps
            assert sketch.cores_used == plan.cores_used
            assert sketch.subtask_shape == plan.subtask_shape
            assert sketch.rotation_paces == plan.rotation_paces
            # The priced time bound is the plan's exact execution time.
            sketch.compute_time = plan.compute_time_est
            assert sketch.comm_time_lower_bound(small_cost_model) == plan.comm_time_est
            assert sketch.time_lower_bound(small_cost_model) == plan.time_est
            # Materializing the sketch rebuilds the identical plan.
            assert sketch.materialize(expr, small_chip, small_cost_model) == plan
        assert feasible > 0 and infeasible > 0

    def test_materialize_without_costing_computes_time(
        self, mm_expr, small_chip, small_cost_model
    ):
        fop = {"m": 64, "k": 1, "n": 1}
        temporal = {"A": 1, "B": 8, "C": 1}
        sketch = sketch_plan(mm_expr, small_chip, fop, temporal)
        assert sketch is not None
        assert sketch.compute_time is None
        plan = sketch.materialize(mm_expr, small_chip, small_cost_model)
        assert plan == build_plan(mm_expr, small_chip, small_cost_model, fop, temporal)
