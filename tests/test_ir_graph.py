"""Tests for the operator graph."""

from __future__ import annotations

import pytest

from repro.ir import OperatorGraph, elementwise, matmul


def build_chain() -> OperatorGraph:
    graph = OperatorGraph(name="chain")
    a = matmul("a", m=8, k=8, n=8)
    b = matmul("b", m=8, k=8, n=8)
    c = elementwise("c", {"r": 8, "c": 8})
    graph.add(a)
    graph.add(b, [a])
    graph.add(c, [b.name, a.name])
    return graph


class TestConstruction:
    def test_len(self):
        assert len(build_chain()) == 3

    def test_topological_order(self):
        names = [op.name for op in build_chain().operators]
        assert names.index("a") < names.index("b") < names.index("c")

    def test_contains(self):
        graph = build_chain()
        assert "a" in graph and "z" not in graph

    def test_get(self):
        assert build_chain().get("b").name == "b"

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError):
            build_chain().get("zzz")

    def test_duplicate_name_rejected(self):
        graph = build_chain()
        with pytest.raises(ValueError):
            graph.add(matmul("a", m=2, k=2, n=2))

    def test_unknown_producer_rejected(self):
        graph = OperatorGraph()
        with pytest.raises(ValueError):
            graph.add(matmul("x", m=2, k=2, n=2), ["missing"])

    def test_extend(self):
        graph = OperatorGraph()
        a = matmul("a", m=2, k=2, n=2)
        b = matmul("b", m=2, k=2, n=2)
        graph.extend([(a, []), (b, ["a"])])
        assert len(graph) == 2


class TestQueries:
    def test_predecessors_and_successors(self):
        graph = build_chain()
        assert {op.name for op in graph.predecessors("c")} == {"a", "b"}
        assert {op.name for op in graph.successors("a")} == {"b", "c"}

    def test_edges(self):
        graph = build_chain()
        pairs = {(u.name, v.name) for u, v in graph.edges()}
        assert ("a", "b") in pairs and ("b", "c") in pairs


class TestStatistics:
    def test_total_flops_positive(self):
        assert build_chain().total_flops > 0

    def test_num_parameters(self):
        graph = build_chain()
        # Two matmuls with 8x8 weights each; the elementwise has none.
        assert graph.num_parameters == 2 * 8 * 8

    def test_unique_signatures(self):
        graph = build_chain()
        histogram = graph.unique_signatures()
        assert sum(histogram.values()) == 3
        assert max(histogram.values()) == 2  # the two identical matmuls

    def test_op_type_histogram(self):
        histogram = build_chain().op_type_histogram()
        assert histogram["matmul"] == 2

    def test_summary_mentions_name(self):
        assert "chain" in build_chain().summary()
