"""Golden-file regression tests for every ``fig*``/``tab*`` experiment.

Each experiment's ``run()`` is executed on a small deterministic slice and
checked against a committed snapshot in ``tests/golden/``:

* the **row schema** (ordered union of column names) must match exactly, and
* the **key columns** — identity and deterministic-count columns, never
  wall-clock timings — must match value-for-value, row-for-row.

On top of the snapshots, per-experiment **invariants** re-assert the headline
qualitative claim of the corresponding paper figure (e.g. fig18's
``complete >= filtered >= optimized`` plan-space reduction, fig16p's zero
plan divergence).

After an intentional change to an experiment's output, regenerate with::

    pytest tests/test_golden_experiments.py --update-golden
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Sequence

import pytest

from repro.experiments import (
    ablation,
    fig02_memory_footprint,
    fig08_cost_model,
    fig12_end_to_end,
    fig13_breakdown,
    fig14_bandwidth,
    fig15_operator_perf,
    fig16_compile_time,
    fig16_parallel,
    fig17_intra_op_plans,
    fig18_search_space,
    fig19_constraints,
    fig20_inter_op,
    fig21_scalability,
    fig22_vs_a100,
    fig23_llm,
    fig24_hbm,
    fig25_serving,
    fig26_multichip,
    fig27_continuous,
    fig29_chaos,
    fig30_multitenant,
    fig31_fleet_chaos,
    fig32_forecast,
    tab02_models,
    tab03_hardware,
)

GOLDEN_DIR = Path(__file__).parent / "golden"


# --------------------------------------------------------------------------- #
# Invariants (the headline claim of each figure, re-checked on live rows)
# --------------------------------------------------------------------------- #
def invariant_fig12(rows: list[dict]) -> None:
    for row in rows:
        assert row["t10_ms"] is not None
        assert row["t10_ms"] < row["roller_ms"]


def invariant_fig15(rows: list[dict]) -> None:
    for row in rows:
        assert row["improved_pct"] >= 50.0
        assert row["max_speedup"] >= row["min_speedup"] > 0


def invariant_fig16(rows: list[dict]) -> None:
    for row in rows:
        assert row["compile_time_s"] > 0
        assert row["unique_operators"] <= row["operators"]


def invariant_fig16p(rows: list[dict]) -> None:
    for row in rows:
        assert row["plans_match"], "parallel compile diverged from serial"
        assert row["status"] == "ok"
        assert row["compile_time_s"] > 0


def invariant_fig18(rows: list[dict]) -> None:
    for row in rows:
        assert (
            row["complete_space"]
            >= row["evaluated_space"]
            >= row["filtered_space"]
            >= row["materialized_space"]
            >= row["optimized_space"]
            >= 1
        )


def invariant_fig20(rows: list[dict]) -> None:
    for row in rows:
        assert row["chosen_est_ms"] <= row["initial_est_ms"] * 1.001


def invariant_fig25(rows: list[dict]) -> None:
    for row in rows:
        assert row["recompiles"] == 0
        assert row["hit_rate"] == 1.0


def invariant_fig26(rows: list[dict]) -> None:
    for row in rows:
        assert row["plans_match"], "sharded stage plans diverged across compiles"
    groups: dict[tuple, list[dict]] = {}
    for row in rows:
        groups.setdefault((row["model"], row["batch"], row["micro_batches"]), []).append(row)
    rescued = False
    for group in groups.values():
        ordered = sorted(group, key=lambda row: row["chips"])
        if ordered[0]["chips"] == 1 and ordered[0]["status"] == "oom":
            assert any(r["status"] == "ok" and r["chips"] >= 2 for r in ordered)
            rescued = True
        throughputs = [r["throughput_rps"] for r in ordered if r["status"] == "ok"]
        assert all(a < b for a, b in zip(throughputs, throughputs[1:]))
    assert rescued, "no workload exercised the OOM-then-sharded path"


def invariant_fig27(rows: list[dict]) -> None:
    # Steady state never compiles, and every request is accounted for.
    for row in rows:
        assert row["recompiles"] == 0
        assert row["completed"] + row["shed"] == row["requests"]
    # The headline claim: at every fleet size, continuous batching achieves
    # strictly higher goodput-under-SLO than static batching on the same
    # fleet — and needs strictly fewer decode iterations to serve the same
    # tokens (retired slots stop being padded).
    by_fleet: dict[int, dict[str, dict]] = {}
    for row in rows:
        by_fleet.setdefault(row["chips"], {})[row["policy"]] = row
    for fleet, policies in by_fleet.items():
        static, continuous = policies["static"], policies["continuous"]
        assert continuous["goodput_rps"] > static["goodput_rps"], (
            f"continuous batching must beat static goodput at {fleet} chip(s)"
        )
        assert continuous["slo_met"] >= static["slo_met"]
        assert continuous["iterations"] < static["iterations"]


def invariant_fig29(rows: list[dict]) -> None:
    by_scenario = {row["scenario"]: row for row in rows}
    baseline = by_scenario["flat/baseline"]
    chaos_rows = [by_scenario["flat/chaos"], by_scenario["sharded/chaos"]]
    # The books always balance, faults or not, and the healthy row is clean.
    for row in rows:
        assert row["completed"] + row["shed"] == row["requests"]
    assert baseline["chip_deaths"] == baseline["requeued"] == 0
    assert baseline["shed"] == 0 and baseline["slo_met"] == baseline["requests"]
    for row in chaos_rows:
        # The schedule fired and the watchdog recovered the fleet: the dead
        # replica's in-flight requests were requeued with their decode
        # progress accounted token-for-token, and the replica was re-placed.
        assert row["chip_deaths"] == 1 and row["restarts"] == 1
        assert row["failovers"] >= 1
        assert row["requeued"] > 0 and row["lost_tokens"] > 0
        # Bounded SLO loss: goodput stays within 25% of the healthy fleet's
        # (sharded/chaos is measured against its own pre-fault rate — its
        # fleet shape differs from the flat baseline).
        assert row["slo_met"] >= 0.75 * baseline["slo_met"]
        # The dip is transient: goodput climbs back over the recovery
        # threshold in finite virtual time.
        assert row["recovery_ms"] != float("inf")
        assert 0.0 <= row["dip_depth"] <= 1.0
    # The flat kill requeues onto the surviving replica and the cold restart
    # re-warms its buckets through the scoped plan-cache namespace.
    assert by_scenario["flat/chaos"]["recompiles"] > 0
    assert by_scenario["flat/chaos"]["degraded_sheds"] > 0
    # The sharded kill exercises stage failover onto the spare chip: the
    # replacement group is warm, so recovery costs no recompilation.
    assert by_scenario["sharded/chaos"]["recompiles"] == 0


def invariant_fig30(rows: list[dict]) -> None:
    # The books always balance and the warmed fleet never recompiles.
    for row in rows:
        assert row["completed"] + row["shed"] == row["requests"]
        assert row["recompiles"] == 0
    by_key = {(row["scheme"], row["tenant"]): row for row in rows}
    partition, fleet = by_key[("partition", "all")], by_key[("fleet", "all")]
    # The headline claim: SLO-class routing over one shared pool strictly
    # beats the static per-model partition on goodput-per-chip (measured
    # over the common serving window) and on cross-tenant fairness...
    assert fleet["goodput_per_chip"] > partition["goodput_per_chip"]
    assert fleet["fairness"] > partition["fairness"]
    # ...without starving anyone: every tenant's SLO attainment stays at or
    # above its declared fairness floor under the routed scheme.
    for (scheme, tenant), row in by_key.items():
        if scheme == "fleet" and tenant != "all":
            assert row["slo_attainment"] >= row["fairness_floor"], (
                f"tenant {tenant} collapsed below its fairness floor"
            )
    # The win mechanism is live: the router re-bound at least one replica
    # across models, and placements are bit-identical at jobs=2.
    assert fleet["rebinds"] > 0
    assert fleet["jobs2_identical"] is True
    assert partition["jobs2_identical"] is None


def invariant_fig31(rows: list[dict]) -> None:
    # The books always balance, chaos or not.
    for row in rows:
        assert row["completed"] + row["shed"] == row["requests"]
    by_key = {(row["scheme"], row["tenant"]): row for row in rows}
    baseline = by_key[("baseline", "all")]
    watchdog = by_key[("watchdog", "all")]
    health = by_key[("health-aware", "all")]
    # The healthy reference saw no chaos and holds every floor.
    assert baseline["chip_deaths"] == baseline["requeued"] == 0
    assert baseline["floor_violations"] == 0
    # The shared schedule fired identically under both chaos schemes: the
    # two-chip GPU class died, the fleet failed over, brownout admission
    # engaged while surviving capacity sat below the watermark, and goodput
    # climbed back in finite virtual time.
    for row in (watchdog, health):
        assert row["chip_deaths"] == 2
        assert row["failovers"] >= 1
        assert row["brownout_sheds"] > 0
        assert 0.0 <= row["dip_depth"] <= 1.0
        assert row["recovery_ms"] != float("inf")
    # The headline claim: reading per-replica health strictly beats
    # watchdog-only failover on dip depth AND recovery time...
    assert health["dip_depth"] < watchdog["dip_depth"]
    assert health["recovery_ms"] < watchdog["recovery_ms"]
    assert health["slo_met"] > watchdog["slo_met"]
    # ...while holding every tenant's fairness floor — which the blind
    # router does not: it starves a single-pass tenant below its floor.
    assert health["floor_violations"] == 0
    assert watchdog["floor_violations"] >= 1
    for (scheme, tenant), row in by_key.items():
        if scheme == "health-aware" and tenant != "all":
            assert row["slo_attainment"] >= row["fairness_floor"], (
                f"tenant {tenant} collapsed below its fairness floor"
            )
    # Cross-model failover engaged: a requeued request was re-admitted on a
    # different replica than the one that died with it.
    assert health["migrations"] > 0
    # Chaos replays are bit-identical across compile parallelism.
    assert health["jobs2_identical"] is True
    assert watchdog["jobs2_identical"] is None


def invariant_fig32(rows: list[dict]) -> None:
    # The books always balance and the warmed fleet never recompiles.
    for row in rows:
        assert row["completed"] + row["shed"] == row["requests"]
        assert row["recompiles"] == 0
    by_key = {(row["scheme"], row["tenant"]): row for row in rows}
    reactive = by_key[("reactive", "all")]
    forecast = by_key[("forecast", "all")]
    instant = by_key[("instant", "all")]
    # The headline claim: planning capacity one provisioning delay ahead of
    # the forecast strictly beats queue-depth reactive autoscaling on BOTH
    # axes — more SLO-met completions per paid chip-second, and a higher
    # fraction of requests inside their deadline.
    assert forecast["goodput_per_chip"] > reactive["goodput_per_chip"]
    assert forecast["slo_attainment"] > reactive["slo_attainment"]
    # The free-and-instant activation of the older figures is the unreachable
    # upper bound that calibrates the comparison: it pays for no idle or
    # booting capacity, so its per-chip goodput tops both managed schemes.
    assert instant["goodput_per_chip"] >= forecast["goodput_per_chip"]
    assert instant["slo_attainment"] >= forecast["slo_attainment"]
    # Both managed schemes actually exercised the provisioning machinery —
    # capacity went up AND came back down — while the instant baseline
    # never touched it.
    for row in (reactive, forecast):
        assert row["provision_ups"] > 0
        assert row["provision_downs"] > 0
    assert instant["provision_ups"] == instant["provision_downs"] == 0
    # Trace replays are bit-identical across compile parallelism.
    assert forecast["jobs2_identical"] is True
    assert reactive["jobs2_identical"] is None


def invariant_ablation(rows: list[dict]) -> None:
    by_variant = {row["variant"]: row for row in rows if "variant" in row}
    assert by_variant["full"]["latency_ms"] is not None


# --------------------------------------------------------------------------- #
# Specs: one deterministic slice per experiment
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class GoldenSpec:
    """How to run and snapshot one experiment."""

    runner: Callable[[], list[dict]]
    key_columns: tuple[str, ...]
    """Columns snapshotted by value (identity/count columns, never timings)."""
    invariant: Callable[[list[dict]], None] | None = None


SPECS: dict[str, GoldenSpec] = {
    "fig02": GoldenSpec(
        lambda: fig02_memory_footprint.run(),
        ("operator",),
    ),
    "fig08": GoldenSpec(
        lambda: fig08_cost_model.run(),
        ("op_type", "fit_samples", "holdout_samples"),
    ),
    "fig12": GoldenSpec(
        lambda: fig12_end_to_end.run(models=("nerf",), quick=True),
        ("model", "batch"),
        invariant_fig12,
    ),
    "fig13": GoldenSpec(
        lambda: fig13_breakdown.run(models=("nerf",), quick=True),
        ("model", "batch", "compiler"),
    ),
    "fig14": GoldenSpec(
        lambda: fig14_bandwidth.run(models=("nerf",), quick=True),
        ("model", "batch"),
    ),
    "fig15": GoldenSpec(
        lambda: fig15_operator_perf.run(models=("nerf",), quick=True),
        ("model", "batch", "operators"),
        invariant_fig15,
    ),
    "fig16": GoldenSpec(
        lambda: fig16_compile_time.run(models=("nerf",), quick=True),
        ("model", "batch", "operators", "unique_operators", "status"),
        invariant_fig16,
    ),
    "fig16p": GoldenSpec(
        lambda: fig16_parallel.run(models=("nerf",), jobs_grid=(1, 2), quick=True),
        ("model", "batch", "jobs", "operators", "unique_operators", "status"),
        invariant_fig16p,
    ),
    "fig17": GoldenSpec(
        lambda: fig17_intra_op_plans.run(quick=True),
        ("operator", "candidates", "pareto_plans"),
    ),
    "fig18": GoldenSpec(
        lambda: fig18_search_space.run(quick=True),
        ("operator", "optimized_space"),
        invariant_fig18,
    ),
    "fig19": GoldenSpec(
        lambda: fig19_constraints.run(models=("nerf",), batch_size=1, quick=True),
        ("model", "setting", "status"),
    ),
    "fig20": GoldenSpec(
        lambda: fig20_inter_op.run(workloads=(("nerf", 1),), quick=True),
        ("model", "batch", "search_steps"),
        invariant_fig20,
    ),
    "fig21": GoldenSpec(
        lambda: fig21_scalability.run(
            workloads=(("nerf", 1),), core_counts=(736, 1472), quick=True
        ),
        ("model", "batch", "cores", "chip"),
    ),
    "fig22": GoldenSpec(
        lambda: fig22_vs_a100.run(models=("nerf",), quick=True),
        ("model", "batch"),
    ),
    "fig23": GoldenSpec(
        lambda: fig23_llm.run(models=("opt-1.3b",), batch_sizes=(2,), quick=True),
        ("model", "batch", "layers"),
    ),
    "fig24": GoldenSpec(
        lambda: fig24_hbm.run(
            workloads=(("opt-1.3b", 8),), bandwidths_gbps=(200, 6400), quick=True
        ),
        ("model", "batch", "hbm_gbps"),
    ),
    "fig25": GoldenSpec(
        lambda: fig25_serving.run(quick=True),
        ("model", "chips", "load_x", "window_x", "completed"),
        invariant_fig25,
    ),
    "fig26": GoldenSpec(
        lambda: fig26_multichip.run(quick=True),
        ("model", "batch", "operators", "chips", "micro_batches", "status", "stage_ops"),
        invariant_fig26,
    ),
    "fig27": GoldenSpec(
        lambda: fig27_continuous.run(quick=True),
        (
            "model",
            "policy",
            "chips",
            "requests",
            "completed",
            "shed",
            "preempted",
            "slo_met",
            "tokens",
            "iterations",
            "scale_ups",
            "warm_compiles",
        ),
        invariant_fig27,
    ),
    "fig29": GoldenSpec(
        lambda: fig29_chaos.run(quick=True),
        (
            "scenario",
            "model",
            "chips",
            "stages",
            "requests",
            "completed",
            "shed",
            "slo_met",
            "tokens",
            "iterations",
            "preempted",
            "migrations",
            "chip_deaths",
            "restarts",
            "failovers",
            "requeued",
            "lost_tokens",
            "lost_iterations",
            "degraded_sheds",
            "warm_compiles",
            "recompiles",
        ),
        invariant_fig29,
    ),
    "fig30": GoldenSpec(
        lambda: fig30_multitenant.run(quick=True),
        (
            "scheme",
            "tenant",
            "model",
            "chips",
            "gpu_chips",
            "requests",
            "completed",
            "shed",
            "slo_met",
            "tokens",
            "preempted",
            "rebinds",
            "warm_compiles",
            "recompiles",
            "placements",
            "jobs2_identical",
        ),
        invariant_fig30,
    ),
    "fig31": GoldenSpec(
        lambda: fig31_fleet_chaos.run(quick=True),
        (
            "scheme",
            "tenant",
            "model",
            "chips",
            "requests",
            "completed",
            "shed",
            "slo_met",
            "tokens",
            "requeued",
            "migrations",
            "lost_tokens",
            "chip_deaths",
            "failovers",
            "retry_drops",
            "brownout_sheds",
            "degraded_sheds",
            "floor_violations",
            "warm_compiles",
            "recompiles",
            "placements",
            "jobs2_identical",
        ),
        invariant_fig31,
    ),
    "fig32": GoldenSpec(
        lambda: fig32_forecast.run(quick=True),
        (
            "scheme",
            "tenant",
            "model",
            "chips",
            "requests",
            "completed",
            "shed",
            "slo_met",
            "tokens",
            "provision_ups",
            "provision_downs",
            "peak_provisioned",
            "warm_compiles",
            "recompiles",
            "placements",
            "jobs2_identical",
        ),
        invariant_fig32,
    ),
    "tab02": GoldenSpec(
        lambda: tab02_models.run(quick=True),
        ("model", "description", "operators", "batch_sizes"),
    ),
    "tab03": GoldenSpec(
        lambda: tab03_hardware.run(),
        ("device", "num_cores"),
    ),
    "ablation": GoldenSpec(
        lambda: ablation.run(workloads=(("nerf", 1),), quick=True),
        ("model", "batch", "variant", "status"),
        invariant_ablation,
    ),
}


# --------------------------------------------------------------------------- #
# Snapshot plumbing
# --------------------------------------------------------------------------- #
def ordered_columns(rows: Sequence[dict]) -> list[str]:
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    return columns


def snapshot(name: str, spec: GoldenSpec, rows: Sequence[dict]) -> dict:
    return {
        "experiment": name,
        "key_columns": list(spec.key_columns),
        "columns": ordered_columns(rows),
        "rows": [
            {column: row.get(column) for column in spec.key_columns}
            for row in rows
        ],
    }


def golden_path(name: str) -> Path:
    return GOLDEN_DIR / f"{name}.json"


@pytest.fixture(scope="session")
def update_golden(request) -> bool:
    return bool(request.config.getoption("--update-golden"))


@pytest.mark.parametrize("name", sorted(SPECS))
def test_experiment_matches_golden(name: str, update_golden: bool):
    spec = SPECS[name]
    rows = spec.runner()
    assert rows, f"{name} produced no rows"
    produced = snapshot(name, spec, rows)

    path = golden_path(name)
    if update_golden:
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(produced, indent=2, sort_keys=False) + "\n")
    assert path.exists(), (
        f"missing golden snapshot {path}; run "
        f"pytest tests/test_golden_experiments.py --update-golden"
    )
    golden = json.loads(path.read_text())

    assert produced["columns"] == golden["columns"], (
        f"{name} row schema drifted from the committed snapshot "
        f"(regen with --update-golden if intentional)"
    )
    assert produced["key_columns"] == golden["key_columns"]
    assert len(produced["rows"]) == len(golden["rows"]), (
        f"{name} row count changed: {len(produced['rows'])} vs "
        f"golden {len(golden['rows'])}"
    )
    for index, (live, saved) in enumerate(zip(produced["rows"], golden["rows"])):
        assert live == saved, f"{name} row {index} key values drifted"

    if spec.invariant is not None:
        spec.invariant(rows)


def test_every_experiment_has_a_spec():
    """New experiments must add a golden spec (and a snapshot) here."""
    from repro.experiments import ALL_EXPERIMENTS

    assert set(SPECS) == set(ALL_EXPERIMENTS)


def test_no_orphan_snapshots():
    """Committed snapshots all correspond to a live experiment spec."""
    committed = {path.stem for path in GOLDEN_DIR.glob("*.json")}
    assert committed <= set(SPECS), f"orphan snapshots: {committed - set(SPECS)}"
