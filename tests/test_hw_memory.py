"""Tests for the per-core memory tracker."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.hw.memory import CoreMemoryTracker, OutOfChipMemoryError


class TestBasicAllocation:
    def test_allocate_and_free(self):
        tracker = CoreMemoryTracker(capacity=1000)
        tracker.allocate("a", 400)
        assert tracker.used == 400
        assert tracker.free == 600
        assert tracker.free_allocation("a") == 400
        assert tracker.used == 0

    def test_reserved_counts_toward_usage(self):
        tracker = CoreMemoryTracker(capacity=1000, reserved=300)
        assert tracker.used == 300
        tracker.allocate("a", 700)
        with pytest.raises(OutOfChipMemoryError):
            tracker.allocate("b", 1)

    def test_oom_raises(self):
        tracker = CoreMemoryTracker(capacity=100)
        with pytest.raises(OutOfChipMemoryError):
            tracker.allocate("big", 101)

    def test_duplicate_name_rejected(self):
        tracker = CoreMemoryTracker(capacity=100)
        tracker.allocate("a", 10)
        with pytest.raises(ValueError):
            tracker.allocate("a", 10)

    def test_negative_size_rejected(self):
        tracker = CoreMemoryTracker(capacity=100)
        with pytest.raises(ValueError):
            tracker.allocate("a", -1)

    def test_free_unknown_raises(self):
        tracker = CoreMemoryTracker(capacity=100)
        with pytest.raises(KeyError):
            tracker.free_allocation("missing")

    def test_reservation_exceeding_capacity(self):
        with pytest.raises(OutOfChipMemoryError):
            CoreMemoryTracker(capacity=10, reserved=20)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            CoreMemoryTracker(capacity=0)


class TestResize:
    def test_grow_and_shrink(self):
        tracker = CoreMemoryTracker(capacity=100)
        tracker.allocate("a", 10)
        tracker.resize("a", 50)
        assert tracker.used == 50
        tracker.resize("a", 5)
        assert tracker.used == 5

    def test_resize_oom(self):
        tracker = CoreMemoryTracker(capacity=100)
        tracker.allocate("a", 10)
        with pytest.raises(OutOfChipMemoryError):
            tracker.resize("a", 200)

    def test_resize_unknown(self):
        tracker = CoreMemoryTracker(capacity=100)
        with pytest.raises(KeyError):
            tracker.resize("missing", 10)


class TestPeakTracking:
    def test_peak_survives_free(self):
        tracker = CoreMemoryTracker(capacity=1000)
        tracker.allocate("a", 800)
        tracker.free_allocation("a")
        tracker.allocate("b", 100)
        assert tracker.peak == 800

    def test_reset_keeps_peak(self):
        tracker = CoreMemoryTracker(capacity=1000)
        tracker.allocate("a", 500)
        tracker.reset()
        assert tracker.used == 0
        assert tracker.peak == 500

    def test_can_fit(self):
        tracker = CoreMemoryTracker(capacity=100, reserved=40)
        assert tracker.can_fit(60)
        assert not tracker.can_fit(61)


class TestErrorMessage:
    def test_mentions_sizes(self):
        error = OutOfChipMemoryError(2048, 1024, "weights")
        assert "2.0 KiB" in str(error)
        assert "weights" in str(error)


@given(st.lists(st.integers(min_value=0, max_value=200), min_size=1, max_size=20))
def test_property_usage_never_exceeds_capacity(sizes):
    tracker = CoreMemoryTracker(capacity=1000)
    for index, size in enumerate(sizes):
        try:
            tracker.allocate(f"alloc{index}", size)
        except OutOfChipMemoryError:
            pass
        assert tracker.used <= 1000
        assert tracker.peak <= 1000
