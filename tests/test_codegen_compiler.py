"""Tests for code generation and the end-to-end T10 compiler."""

from __future__ import annotations

import pytest

from repro.core import T10Compiler
from repro.core.codegen import generate_program
from repro.hw.program import AllToAllStep, ComputeStep, SetupStep, ShiftStep
from repro.hw.spec import ChipSpec, KiB
from repro.ir import OperatorGraph, elementwise, matmul
from repro.models import build_bert


def small_graph() -> OperatorGraph:
    graph = OperatorGraph(name="mlp")
    fc1 = matmul("fc1", m=256, k=128, n=256)
    act = elementwise("act", {"r": 256, "c": 256}, kind="relu", num_inputs=1)
    fc2 = matmul("fc2", m=256, k=256, n=128)
    graph.add(fc1)
    graph.add(act, [fc1])
    graph.add(fc2, [act])
    return graph


class TestCodegen:
    def test_program_contains_compute_for_every_operator(self, small_compiler):
        graph = small_graph()
        compiled = small_compiler.compile(graph)
        assert compiled.ok
        compute_ops = {
            step.op_name for step in compiled.program.steps if isinstance(step, ComputeStep)
        }
        assert compute_ops == {op.name for op in graph.operators}

    def test_memory_accounting_matches_schedule(self, small_compiler):
        compiled = small_compiler.compile(small_graph())
        assert compiled.ok
        assert (
            compiled.program.idle_memory_per_core
            == compiled.schedule.idle_memory_per_core
        )
        assert compiled.program.peak_memory_per_core <= small_compiler.chip.sram_per_core

    def test_setup_steps_match_schedule(self, small_compiler):
        compiled = small_compiler.compile(small_graph())
        setup_ops = {
            step.op_name for step in compiled.program.steps if isinstance(step, SetupStep)
        }
        expected = {
            name
            for name, entry in compiled.schedule.per_op.items()
            if entry.setup_bytes > 0
        }
        assert setup_ops == expected

    def test_shift_steps_only_for_rotated_plans(self, small_compiler):
        compiled = small_compiler.compile(small_graph())
        for step in compiled.program.steps:
            if isinstance(step, ShiftStep):
                plan = compiled.schedule.per_op[step.op_name].active_plan
                assert plan.shift_ops

    def test_layout_transitions_have_positive_volume(self, small_compiler):
        compiled = small_compiler.compile(small_graph())
        for step in compiled.program.steps:
            if isinstance(step, AllToAllStep):
                assert step.total_bytes > 0

    def test_generate_program_direct_call(self, small_compiler):
        graph = small_graph()
        compiled = small_compiler.compile(graph)
        program = generate_program(graph, compiled.schedule, small_compiler.chip)
        assert len(program) > 0


class TestCompiler:
    def test_compile_ok(self, small_compiler):
        compiled = small_compiler.compile(small_graph())
        assert compiled.ok
        assert compiled.status == "ok"
        assert compiled.compile_time_seconds > 0
        assert set(compiled.pareto_plans) == {"fc1", "act", "fc2"}

    def test_plan_for(self, small_compiler):
        compiled = small_compiler.compile(small_graph())
        plan = compiled.plan_for("fc1")
        assert plan.op_type == "matmul"

    def test_plan_for_requires_success(self, small_compiler):
        compiled = small_compiler.compile(small_graph())
        compiled.schedule = None
        with pytest.raises(RuntimeError):
            compiled.plan_for("fc1")

    def test_summary_mentions_chip(self, small_compiler):
        compiled = small_compiler.compile(small_graph())
        assert small_compiler.chip.name in compiled.summary()

    def test_search_stats_present(self, small_compiler):
        compiled = small_compiler.compile(small_graph())
        assert set(compiled.search_stats) == {"fc1", "act", "fc2"}

    def test_oom_status_for_oversized_model(self, small_cost_model, fast_constraints):
        cramped = ChipSpec(
            name="cramped",
            num_cores=64,
            sram_per_core=32 * KiB,
            core_flops=100e9,
            link_bandwidth=5.5e9,
            link_latency=0.4e-6,
            offchip_bandwidth=8e9,
        )
        compiler = T10Compiler(cramped, cost_model=small_cost_model, constraints=fast_constraints)
        graph = OperatorGraph(name="too-big")
        graph.add(matmul("huge", m=4096, k=4096, n=4096))
        compiled = compiler.compile(graph)
        assert not compiled.ok
        assert compiled.status == "oom"
        assert compiled.error

    def test_compile_operator_convenience(self, small_compiler):
        plans = small_compiler.compile_operator(matmul("mm", m=128, k=128, n=128))
        assert plans

    def test_compile_operator_matches_intra_op_search(self, small_compiler):
        operator = matmul("mm", m=128, k=128, n=128)
        assert small_compiler.compile_operator(operator) is (
            small_compiler.intra_op.pareto_plans(operator)
        )

    def test_compile_operator_infeasible_raises(
        self, small_cost_model, fast_constraints
    ):
        cramped = ChipSpec(
            name="cramped",
            num_cores=64,
            sram_per_core=32 * KiB,
            core_flops=100e9,
            link_bandwidth=5.5e9,
            link_latency=0.4e-6,
            offchip_bandwidth=8e9,
        )
        compiler = T10Compiler(
            cramped, cost_model=small_cost_model, constraints=fast_constraints
        )
        with pytest.raises(ValueError, match="no feasible execution plan"):
            compiler.compile_operator(matmul("huge", m=4096, k=4096, n=4096))

    def test_plan_for_unknown_operator(self, small_compiler):
        compiled = small_compiler.compile(small_graph())
        assert compiled.ok
        with pytest.raises(KeyError):
            compiled.plan_for("not-an-operator")

    def test_summary_reports_failure_diagnosis(
        self, small_cost_model, fast_constraints
    ):
        cramped = ChipSpec(
            name="cramped",
            num_cores=64,
            sram_per_core=32 * KiB,
            core_flops=100e9,
            link_bandwidth=5.5e9,
            link_latency=0.4e-6,
            offchip_bandwidth=8e9,
        )
        compiler = T10Compiler(
            cramped, cost_model=small_cost_model, constraints=fast_constraints
        )
        graph = OperatorGraph(name="too-big")
        graph.add(matmul("huge", m=4096, k=4096, n=4096))
        compiled = compiler.compile(graph)
        assert not compiled.ok
        summary = compiled.summary()
        assert "too-big" in summary
        assert "oom" in summary
        assert compiled.error in summary

    def test_plan_cache_shared_across_layers(self, ipu_chip, ipu_cost_model, fast_constraints):
        """Identical transformer layers are searched once (paper §6.3)."""
        compiler = T10Compiler(ipu_chip, cost_model=ipu_cost_model, constraints=fast_constraints)
        graph = build_bert(1, num_layers=2)
        compiled = compiler.compile(graph)
        assert compiled.ok
        qkv_frontiers = {
            id(compiled.pareto_plans[op.name])
            for op in graph.operators
            if op.name.endswith("attn.qkv")
        }
        assert len(qkv_frontiers) == 1
