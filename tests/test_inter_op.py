"""Tests for the inter-operator memory-reconciliation scheduler (Algorithm 1)."""

from __future__ import annotations

import pytest

from repro.core import InterOpScheduler, IntraOpOptimizer
from repro.hw.memory import OutOfChipMemoryError
from repro.hw.spec import ChipSpec, KiB
from repro.ir import matmul


@pytest.fixture()
def scheduler(small_chip, small_cost_model):
    return InterOpScheduler(small_chip, small_cost_model)


@pytest.fixture()
def frontier_for(small_chip, small_cost_model, fast_constraints):
    optimizer = IntraOpOptimizer(small_chip, small_cost_model, fast_constraints)

    def build(name: str, m: int, k: int, n: int):
        return optimizer.pareto_plans(matmul(name, m=m, k=k, n=n))

    return build


class TestReconcile:
    def test_single_operator(self, scheduler, frontier_for):
        plans = frontier_for("mm", 256, 256, 256)
        schedule = scheduler.reconcile({"mm": plans})
        assert set(schedule.per_op) == {"mm"}
        entry = schedule.per_op["mm"]
        assert entry.active_plan in plans
        assert entry.idle_plan in plans
        assert entry.setup_time_est >= 0
        assert schedule.est_total_time > 0

    def test_multiple_operators_fit_memory(self, scheduler, frontier_for, small_chip):
        pareto = {
            "a": frontier_for("a", 256, 256, 256),
            "b": frontier_for("b", 128, 512, 128),
            "c": frontier_for("c", 512, 64, 256),
        }
        schedule = scheduler.reconcile(pareto)
        assert schedule.idle_memory_per_core <= small_chip.sram_per_core
        for name, entry in schedule.per_op.items():
            available = (
                small_chip.sram_per_core
                - schedule.idle_memory_per_core
                + entry.idle_plan.idle_bytes
            )
            assert entry.active_plan.memory_bytes <= available

    def test_identical_operators_grouped(self, scheduler, frontier_for):
        plans = frontier_for("mm", 256, 256, 256)
        schedule = scheduler.reconcile({"x": plans, "y": plans, "z": plans})
        entries = list(schedule.per_op.values())
        assert len(entries) == 3
        assert all(entry.active_plan is entries[0].active_plan for entry in entries)

    def test_history_recorded(self, scheduler, frontier_for):
        schedule = scheduler.reconcile({"mm": frontier_for("mm", 256, 256, 256)})
        assert schedule.search_history
        idle_memories = [mem for mem, _ in schedule.search_history]
        assert idle_memories == sorted(idle_memories)

    def test_best_configuration_selected(self, scheduler, frontier_for):
        schedule = scheduler.reconcile({"mm": frontier_for("mm", 256, 256, 256)})
        best_history_time = min(time for _, time in schedule.search_history)
        assert schedule.est_total_time == pytest.approx(best_history_time, rel=1e-6)

    def test_empty_frontier_rejected(self, scheduler):
        with pytest.raises(ValueError):
            scheduler.reconcile({"mm": []})

    def test_setup_plus_active_totals(self, scheduler, frontier_for):
        schedule = scheduler.reconcile({"mm": frontier_for("mm", 256, 256, 256)})
        assert schedule.est_total_time == pytest.approx(
            schedule.est_setup_time + schedule.est_active_time, rel=1e-9
        )


class TestMemoryPressure:
    def test_more_memory_never_hurts(self, small_cost_model, frontier_for, small_chip):
        """With a bigger scratchpad the reconciled estimate can only improve."""
        pareto = {
            "a": frontier_for("a", 256, 256, 256),
            "b": frontier_for("b", 512, 256, 128),
        }
        small_schedule = InterOpScheduler(small_chip, small_cost_model).reconcile(pareto)
        bigger_chip = ChipSpec(
            name="bigger",
            num_cores=small_chip.num_cores,
            sram_per_core=small_chip.sram_per_core * 4,
            core_flops=small_chip.core_flops,
            link_bandwidth=small_chip.link_bandwidth,
            link_latency=small_chip.link_latency,
            offchip_bandwidth=small_chip.offchip_bandwidth,
        )
        big_schedule = InterOpScheduler(bigger_chip, small_cost_model).reconcile(pareto)
        assert big_schedule.est_total_time <= small_schedule.est_total_time * 1.001

    def test_raises_when_nothing_fits(self, small_cost_model, frontier_for):
        tiny = ChipSpec(
            name="impossible",
            num_cores=64,
            sram_per_core=16 * KiB,
            core_flops=100e9,
            link_bandwidth=5.5e9,
            link_latency=0.4e-6,
            offchip_bandwidth=8e9,
        )
        scheduler = InterOpScheduler(tiny, small_cost_model)
        pareto = {f"op{i}": frontier_for(f"op{i}", 512, 512, 512) for i in range(4)}
        with pytest.raises(OutOfChipMemoryError):
            scheduler.reconcile(pareto)

    def test_max_search_steps_respected(self, small_chip, small_cost_model, frontier_for):
        scheduler = InterOpScheduler(small_chip, small_cost_model, max_search_steps=3)
        schedule = scheduler.reconcile({"mm": frontier_for("mm", 256, 256, 256)})
        assert len(schedule.search_history) <= 3
