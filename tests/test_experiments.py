"""Smoke tests for the experiment harness (one per paper figure/table).

These run each experiment's ``run()`` on a deliberately small slice of the
full grid (single model, one or two batch sizes) and validate the row schema
plus the headline qualitative claims the corresponding figure makes.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    ALL_EXPERIMENTS,
    fig02_memory_footprint,
    fig08_cost_model,
    fig12_end_to_end,
    fig13_breakdown,
    fig14_bandwidth,
    fig15_operator_perf,
    fig16_compile_time,
    fig16_parallel,
    fig18_search_space,
    fig19_constraints,
    fig20_inter_op,
    fig21_scalability,
    fig22_vs_a100,
    fig23_llm,
    fig24_hbm,
    tab02_models,
    tab03_hardware,
)
from repro.experiments.common import format_table


class TestHarness:
    def test_all_experiments_registered(self):
        assert len(ALL_EXPERIMENTS) == 26
        for module in ALL_EXPERIMENTS.values():
            assert hasattr(module, "run")
            assert hasattr(module, "main")

    def test_format_table(self):
        text = format_table([{"a": 1, "b": 2.5}, {"a": None}], title="t")
        assert "t" in text and "x" in text

    def test_cli_list(self, capsys):
        from repro.experiments.__main__ import main as cli_main

        assert cli_main(["list"]) == 0
        captured = capsys.readouterr()
        assert "fig12" in captured.out and "ablation" in captured.out

    def test_cli_unknown_experiment(self):
        from repro.experiments.__main__ import main as cli_main

        assert cli_main(["fig99"]) == 2

    def test_cli_runs_cheap_experiment(self, capsys):
        from repro.experiments.__main__ import main as cli_main

        assert cli_main(["tab03", "--quick"]) == 0
        assert "IPU-MK2" in capsys.readouterr().out


class TestAblation:
    def test_full_pipeline_best(self):
        from repro.experiments import ablation

        rows = ablation.run(workloads=(("nerf", 1),), quick=True)
        by_variant = {row["variant"]: row for row in rows}
        assert by_variant["full"]["latency_ms"] is not None
        assert (
            by_variant["full"]["latency_ms"]
            <= by_variant["no-reconciliation"]["latency_ms"] * 1.02
        )
        assert (
            by_variant["full"]["latency_ms"]
            <= by_variant["greedy-active"]["latency_ms"] * 1.02
        )

    def test_unknown_variant_rejected(self):
        from repro.experiments import ablation

        with pytest.raises(ValueError):
            ablation.run(workloads=(("nerf", 1),), variants=("nonsense",), quick=True)


class TestFig02:
    def test_rows(self):
        rows = fig02_memory_footprint.run()
        assert len(rows) == 5
        for row in rows:
            assert row["active_operator_kib"] > 0
            assert row["sub_operator_kib"] > 0
            assert row["removable_ratio_pct"] > 0


class TestFig08:
    def test_conv_worst(self):
        rows = fig08_cost_model.run()
        by_type = {row["op_type"]: row for row in rows}
        assert by_type["matmul"]["r2"] > 0.9
        assert by_type["conv2d"]["mape_pct"] > by_type["matmul"]["mape_pct"]

    def test_scatter_points(self):
        points = fig08_cost_model.scatter(op_type="matmul", num_samples=8)
        assert len(points) == 8
        assert all(p["measured_us"] > 0 and p["predicted_us"] > 0 for p in points)


class TestFig12:
    def test_nerf_column(self):
        rows = fig12_end_to_end.run(models=("nerf",), quick=True)
        assert rows
        row = rows[0]
        assert row["t10_ms"] is not None
        assert row["roller_ms"] is not None
        assert row["t10_ms"] < row["roller_ms"]
        assert row["popart_ms"] is None  # PopART cannot fit NeRF (paper Figure 12).


class TestFig13:
    def test_t10_lower_transfer_fraction(self):
        rows = fig13_breakdown.run(models=("nerf",), quick=True)
        by_compiler = {row["compiler"]: row for row in rows}
        t10_transfer = by_compiler["T10"]["transfer_fraction_pct"]
        assert t10_transfer < by_compiler["Roller"]["transfer_fraction_pct"]


class TestFig14:
    def test_bandwidth_columns(self):
        rows = fig14_bandwidth.run(models=("nerf",), quick=True)
        assert rows[0]["t10_gbps"] is not None
        assert rows[0]["roller_gbps"] is not None


class TestFig15:
    def test_most_operators_improve(self):
        rows = fig15_operator_perf.run(models=("nerf",), quick=True)
        assert rows
        assert rows[0]["improved_pct"] >= 50.0
        assert rows[0]["max_speedup"] >= 1.0


class TestFig16:
    def test_compile_times_recorded(self):
        rows = fig16_compile_time.run(models=("nerf",), quick=True)
        assert rows
        assert all(row["compile_time_s"] > 0 for row in rows)
        assert all(row["unique_operators"] <= row["operators"] for row in rows)


class TestFig16Parallel:
    def test_sweep_rows_and_determinism(self):
        rows = fig16_parallel.run(
            models=("nerf",), jobs_grid=(1, 2), quick=True
        )
        assert len(rows) == 2
        by_jobs = {row["jobs"]: row for row in rows}
        assert set(by_jobs) == {1, 2}
        assert all(row["plans_match"] for row in rows)
        assert all(row["compile_time_s"] > 0 for row in rows)
        assert by_jobs[1]["speedup_vs_serial"] == pytest.approx(1.0)

    def test_serial_reference_always_included(self):
        rows = fig16_parallel.run(models=("nerf",), jobs_grid=(2,), quick=True)
        assert {row["jobs"] for row in rows} == {1, 2}

    def test_serial_reference_runs_first_regardless_of_grid_order(self):
        rows = fig16_parallel.run(models=("nerf",), jobs_grid=(2, 1), quick=True)
        assert [row["jobs"] for row in rows] == [1, 2]
        assert all(row["plans_match"] for row in rows)

    def test_bad_jobs_grid_rejected(self):
        with pytest.raises(ValueError):
            fig16_parallel.run(models=("nerf",), jobs_grid=(0, 2), quick=True)
        with pytest.raises(ValueError):
            fig16_parallel.run(models=("nerf",), jobs_grid=(), quick=True)

    def test_cli_jobs_flag_maps_to_jobs_grid(self, capsys):
        from repro.experiments.__main__ import main as cli_main

        assert cli_main(["fig16p", "--quick", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "jobs" in out

    def test_cli_jobs_flag_noted_when_ignored(self, capsys):
        from repro.experiments.__main__ import main as cli_main

        assert cli_main(["tab03", "--quick", "--jobs", "2"]) == 0
        assert "--jobs ignored" in capsys.readouterr().out


class TestFig18:
    def test_space_reduction(self):
        rows = fig18_search_space.run(quick=True)
        assert rows
        for row in rows:
            assert row["complete_space"] >= row["filtered_space"] >= row["optimized_space"]
            assert row["optimized_space"] >= 1


class TestFig19:
    def test_constraint_sweep(self):
        rows = fig19_constraints.run(models=("nerf",), batch_size=1, quick=True)
        assert len(rows) >= 2
        assert all(row["compile_time_s"] > 0 for row in rows)


class TestFig20:
    def test_trajectory_monotone_memory(self):
        points = fig20_inter_op.search_trajectory("nerf", 1, quick=True)
        assert points
        memories = [p["idle_memory_kib"] for p in points]
        assert memories == sorted(memories)

    def test_summary_rows(self):
        rows = fig20_inter_op.run(workloads=(("nerf", 1),), quick=True)
        assert rows
        assert rows[0]["chosen_est_ms"] <= rows[0]["initial_est_ms"] * 1.001


class TestFig21:
    def test_more_cores_not_slower_for_t10(self):
        rows = fig21_scalability.run(workloads=(("nerf", 1),), core_counts=(736, 1472), quick=True)
        by_cores = {row["cores"]: row for row in rows}
        assert by_cores[1472]["t10_ms"] <= by_cores[736]["t10_ms"] * 1.05
        for row in rows:
            assert row["t10_ms"] <= row["roller_ms"]


class TestFig22:
    def test_small_batch_ipu_wins(self):
        rows = fig22_vs_a100.run(models=("nerf",), quick=True)
        assert rows
        assert all(row["a100_ms"] > 0 for row in rows)


class TestFig23:
    def test_llm_decode_ipu_faster_at_small_batch(self):
        rows = fig23_llm.run(models=("opt-1.3b",), batch_sizes=(2,), quick=True)
        assert rows
        row = rows[0]
        assert row["ipu_t10_ms"] is not None
        assert row["ipu_speedup_vs_a100"] > 1.0


class TestFig24:
    def test_bandwidth_sweep_monotone(self):
        rows = fig24_hbm.run(
            workloads=(("opt-1.3b", 8),), bandwidths_gbps=(200, 6400), quick=True
        )
        by_bw = {row["hbm_gbps"]: row for row in rows}
        assert by_bw[6400]["t10_single_op_ms"] <= by_bw[200]["t10_single_op_ms"]
        assert by_bw[200]["t10_inter_op_ms"] <= by_bw[200]["t10_single_op_ms"] * 1.2


class TestTables:
    def test_tab02_parameters_close_to_reference(self):
        rows = tab02_models.run(quick=True)
        by_model = {row["model"]: row for row in rows}
        bert = by_model["bert"]
        assert bert["built_parameters_m"] == pytest.approx(
            bert["reference_parameters_m"], rel=0.35
        )

    def test_tab03_hardware(self):
        rows = tab03_hardware.run()
        devices = {row["device"] for row in rows}
        assert devices == {"A100", "IPU-MK2"}
        ipu = next(row for row in rows if row["device"] == "IPU-MK2")
        assert ipu["num_cores"] == 1472
