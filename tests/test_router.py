"""Tests for fleet request routing (repro.serving.router).

Routers are pure functions of ``(request, view)``, so everything here runs
against hand-built :class:`FleetView` snapshots — no compilation, no engine.
"""

from __future__ import annotations

import pytest

from repro.serving import (
    HEALTH_DEAD,
    HEALTH_DEGRADED,
    HEALTH_HEALTHY,
    HEALTH_RESTARTING,
    SLO_BEST_EFFORT,
    CostAwareRouter,
    DecodeRequest,
    FleetView,
    LeastLoadedRouter,
    ReplicaView,
    Router,
    StaticPartitionRouter,
)


def replica(
    index: int,
    model: str = "m",
    *,
    chip_class: str = "ipu",
    queued: int = 0,
    resident: int = 0,
    busy: bool = False,
    health: str = HEALTH_HEALTHY,
    link_factor: float = 1.0,
) -> ReplicaView:
    return ReplicaView(
        index=index,
        model=model,
        chip_class=chip_class,
        queued=queued,
        resident=resident,
        busy=busy,
        health=health,
        link_factor=link_factor,
    )


def view(
    *replicas: ReplicaView,
    latencies: dict[str, float] | None = None,
    now: float = 0.0,
    work: int = 10,
    max_batch: int = 4,
) -> FleetView:
    """A FleetView pricing every model at ``latencies[chip_class]`` seconds
    per iteration (default 1.0) with uniform work and batch size."""
    priced = latencies or {}
    ordered = tuple(replicas)
    return FleetView(
        now=now,
        replicas=ordered,
        iteration_latency=lambda model, index: priced.get(
            ordered[index].chip_class, 1.0
        ),
        ideal_iterations=lambda model, prompt, output: work,
        max_batch=lambda model: max_batch,
    )


def request(
    request_id: int = 0,
    model: str = "m",
    *,
    deadline: float | None = None,
    slo_class: str | None = None,
) -> DecodeRequest:
    return DecodeRequest(
        request_id=request_id,
        model=model,
        arrival_time=0.0,
        prompt_tokens=16,
        max_new_tokens=4,
        slo_class=slo_class or ("interactive" if deadline is not None else SLO_BEST_EFFORT),
        deadline=deadline,
    )


class TestReplicaView:
    def test_load_and_rebindable(self):
        assert replica(0, queued=2, resident=3).load == 5
        assert replica(0).rebindable
        assert not replica(0, busy=True).rebindable
        assert not replica(0, queued=1).rebindable
        assert not replica(0, resident=1).rebindable

    def test_view_filters(self):
        snapshot = view(replica(0, "a"), replica(1, "b"), replica(2, "a", busy=True))
        assert [r.index for r in snapshot.compatible("a")] == [0, 2]
        assert [r.index for r in snapshot.rebindable()] == [0, 1]


class TestLeastLoadedRouter:
    def test_picks_least_loaded_bound_replica(self):
        snapshot = view(
            replica(0, "m", queued=3), replica(1, "m", queued=1), replica(2, "m", queued=2)
        )
        assert LeastLoadedRouter().route(request(), snapshot) == 1

    def test_ties_break_to_lowest_index(self):
        snapshot = view(replica(0, "m", queued=1), replica(1, "m", queued=1))
        assert LeastLoadedRouter().route(request(), snapshot) == 0

    def test_unbound_model_takes_first_idle(self):
        snapshot = view(replica(0, "other", busy=True), replica(1, "other"))
        assert LeastLoadedRouter().route(request(), snapshot) == 1

    def test_parks_when_no_candidate(self):
        snapshot = view(replica(0, "other", busy=True), replica(1, "other", queued=1))
        assert LeastLoadedRouter().route(request(), snapshot) is None

    def test_spills_to_idle_when_bound_replicas_are_full(self):
        busy_bound = replica(0, "m", resident=4)
        idle = replica(1, "other")
        assert LeastLoadedRouter().route(request(), view(busy_bound, idle, max_batch=4)) == 1
        # Below the spill threshold the bound replica keeps the request.
        light_bound = replica(0, "m", resident=3)
        assert LeastLoadedRouter().route(request(), view(light_bound, idle, max_batch=4)) == 0

    def test_spill_load_override_and_validation(self):
        bound = replica(0, "m", resident=2)
        idle = replica(1, "other")
        assert LeastLoadedRouter(spill_load=2).route(request(), view(bound, idle)) == 1
        with pytest.raises(ValueError):
            LeastLoadedRouter(spill_load=0)


class TestCostAwareRouter:
    def test_prefers_faster_hardware_class(self):
        snapshot = view(
            replica(0, "m", chip_class="gpu"),
            replica(1, "m", chip_class="ipu"),
            latencies={"gpu": 5.0, "ipu": 1.0},
        )
        assert CostAwareRouter().route(request(), snapshot) == 1

    def test_rebind_surcharge_keeps_light_backlog_on_bound_replica(self):
        # Bound backlog of one round (4 queued / max_batch 4) is cheaper than
        # paying the 4-iteration re-bind surcharge on the idle replica.
        bound = replica(0, "m", queued=4)
        idle = replica(1, "other")
        assert CostAwareRouter().route(request(), view(bound, idle)) == 0

    def test_heavy_backlog_annexes_idle_replica(self):
        bound = replica(0, "m", queued=24)
        idle = replica(1, "other")
        assert CostAwareRouter().route(request(), view(bound, idle)) == 1

    def test_deadline_holds_request_on_bound_replica_that_meets_it(self):
        # The idle replica projects cheaper than the backlogged bound one,
        # but the bound replica still meets the deadline — keep the re-bind
        # in reserve and stay bound.
        bound = replica(0, "m", queued=24)  # 6 rounds + 10 work = 16s
        idle = replica(1, "other")  # 10 work + 4 surcharge = 14s
        assert CostAwareRouter().route(request(deadline=20.0), view(bound, idle)) == 0
        # Best-effort traffic with the same shape takes the cheaper idle one.
        assert CostAwareRouter().route(request(), view(bound, idle)) == 1

    def test_deadline_unreachable_on_bound_replica_falls_through(self):
        bound = replica(0, "m", queued=24)  # projects 16s > deadline 15
        idle = replica(1, "other")  # projects 14s
        assert CostAwareRouter().route(request(deadline=15.0), view(bound, idle)) == 1

    def test_parks_when_no_candidate(self):
        snapshot = view(replica(0, "other", busy=True))
        assert CostAwareRouter().route(request(), snapshot) is None

    def test_rebind_cost_validation(self):
        with pytest.raises(ValueError):
            CostAwareRouter(rebind_cost_iterations=-1.0)


class TestRouterHealth:
    def test_alive_and_rebindable_by_health_state(self):
        assert replica(0, health=HEALTH_HEALTHY).alive
        assert replica(0, health=HEALTH_DEGRADED).alive
        assert not replica(0, health=HEALTH_RESTARTING).alive
        assert not replica(0, health=HEALTH_DEAD).alive
        # A dead chip cannot take a binding, however idle it looks.
        assert not replica(0, health=HEALTH_DEAD).rebindable
        assert not replica(0, health=HEALTH_RESTARTING).rebindable
        assert replica(0, health=HEALTH_DEGRADED).rebindable

    def test_routes_around_dead_bound_replica(self):
        # The dead replica is empty (cheapest projection on paper); the live
        # one carries backlog — health-aware routing still avoids the corpse.
        dead = replica(0, "m", health=HEALTH_DEAD)
        live = replica(1, "m", queued=8)
        assert CostAwareRouter().route(request(), view(dead, live)) == 1

    def test_restarting_replica_is_also_avoided(self):
        warming = replica(0, "m", health=HEALTH_RESTARTING)
        live = replica(1, "m", queued=8)
        assert CostAwareRouter().route(request(), view(warming, live)) == 1

    def test_parks_when_every_bound_replica_is_dead(self):
        snapshot = view(
            replica(0, "m", health=HEALTH_DEAD),
            replica(1, "other", busy=True),
        )
        assert CostAwareRouter().route(request(), snapshot) is None

    def test_link_factor_priced_into_projection(self):
        # Equal load: the degraded replica's iterations cost 8x, so the
        # healthy one wins despite the tie everywhere else.
        sick = replica(0, "m", health=HEALTH_DEGRADED, link_factor=8.0)
        healthy = replica(1, "m")
        assert CostAwareRouter().route(request(), view(sick, healthy)) == 1
        # A mildly degraded replica can still be the cheapest option: 1.2x
        # slower beats a healthy replica buried under six rounds of backlog.
        mild = replica(0, "m", health=HEALTH_DEGRADED, link_factor=1.2)
        buried = replica(1, "m", queued=24)
        assert CostAwareRouter().route(request(), view(mild, buried)) == 0

    def test_blind_router_ignores_health(self):
        # health_aware=False is the watchdog-only ablation: it keeps pricing
        # the dead replica at steady state and routes straight into it.
        dead = replica(0, "m", health=HEALTH_DEAD)
        live = replica(1, "m", queued=8)
        blind = CostAwareRouter(health_aware=False)
        assert blind.route(request(), view(dead, live)) == 0
        sick = replica(0, "m", health=HEALTH_DEGRADED, link_factor=8.0)
        healthy = replica(1, "m", queued=1)
        assert blind.route(request(), view(sick, healthy)) == 0

    def test_names_distinguish_the_ablation(self):
        assert CostAwareRouter().name == "cost-aware"
        assert CostAwareRouter(health_aware=False).name == "cost-aware-blind"


class TestStaticPartitionRouter:
    def test_routes_within_owned_partition_only(self):
        router = StaticPartitionRouter({"a": [0, 1], "b": [2]})
        snapshot = view(
            replica(0, "a", queued=5), replica(1, "a", queued=1), replica(2, "b")
        )
        assert router.route(request(model="a"), snapshot) == 1
        assert router.route(request(model="b"), snapshot) == 2

    def test_never_crosses_partition_even_when_idle(self):
        router = StaticPartitionRouter({"a": [0], "b": [1]})
        snapshot = view(replica(0, "a", queued=9), replica(1, "b"))
        assert router.route(request(model="a"), snapshot) == 0

    def test_unpartitioned_model_raises(self):
        router = StaticPartitionRouter({"a": [0]})
        with pytest.raises(ValueError, match="no partition"):
            router.route(request(model="zzz"), view(replica(0, "a")))

    def test_partition_validation(self):
        with pytest.raises(ValueError):
            StaticPartitionRouter({})
        with pytest.raises(ValueError):
            StaticPartitionRouter({"a": []})
        with pytest.raises(ValueError, match="disjoint"):
            StaticPartitionRouter({"a": [0], "b": [0]})


class TestPluggableRouter:
    def test_custom_router_subclasses_the_interface(self):
        """The router interface is the extension point a learned (e.g. BRAD
        forest) router would plug into: pure (request, view) -> index."""

        class PinEverything(Router):
            name = "pin"

            def route(self, req, snapshot):
                return snapshot.replicas[-1].index

        router = PinEverything()
        assert isinstance(router, Router)
        assert router.route(request(), view(replica(0, "m"), replica(1, "m"))) == 1
