"""Tests for operator partitioning: F_op enumeration, rTensor derivation, alignment."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.constraints import SearchConstraints
from repro.core.partition import (
    align_rotation_paces,
    complete_space_size,
    derive_rtensor,
    enumerate_operator_partitions,
    filtered_space_size,
    max_usable_cores,
    spatial_factor,
    sub_extents,
    temporal_factor_choices,
    tensor_sharing_degree,
    tensor_sub_shape,
)
from repro.ir import conv2d, matmul
from repro.utils import prod


@pytest.fixture()
def mm():
    return matmul("mm", m=6, k=6, n=3).expr


@pytest.fixture()
def conv():
    return conv2d(
        "conv", batch=4, in_channels=8, out_channels=16, height=16, width=16, kernel=3
    ).expr


class TestDerivedQuantities:
    def test_sub_extents(self, mm):
        assert sub_extents(mm, {"m": 2, "k": 1, "n": 3}) == {"m": 3, "k": 6, "n": 1}

    def test_sharing_degree_matches_paper_example(self, mm):
        """Figure 7: F_op = [2, 1, 3] -> A shared by 3 cores, B by 2, C by 1."""
        fop = {"m": 2, "k": 1, "n": 3}
        a, b = mm.inputs
        assert tensor_sharing_degree(mm, a, fop) == 3
        assert tensor_sharing_degree(mm, b, fop) == 2
        assert tensor_sharing_degree(mm, mm.output, fop) == 1

    def test_spatial_factor(self, mm):
        fop = {"m": 2, "k": 1, "n": 3}
        a, b = mm.inputs
        assert spatial_factor(mm, a, fop) == (2, 1)
        assert spatial_factor(mm, b, fop) == (1, 3)
        assert spatial_factor(mm, mm.output, fop) == (2, 3)

    def test_tensor_sub_shape_with_halo(self, conv):
        input_spec = next(s for s in conv.inputs if s.name == "I")
        factors = {"b": 1, "f": 1, "c": 1, "h": 4, "w": 4, "kh": 1, "kw": 1}
        shape = tensor_sub_shape(conv, input_spec, factors)
        # Output tile 4x4 plus the 3x3 kernel halo -> 6x6 input footprint.
        assert shape == (4, 8, 6, 6)

    def test_max_usable_cores_small_operator(self, mm):
        assert max_usable_cores(mm, 1000) == 6 * 6 * 3


class TestDeriveRTensor:
    def test_replicated_weight(self, mm):
        fop = {"m": 6, "k": 1, "n": 1}
        b = mm.inputs[1]
        config = derive_rtensor(mm, b, fop, 1)
        assert config is not None
        assert config.sharing_degree == 6
        assert not config.is_rotated
        assert config.partition_bytes == config.sub_tensor_bytes

    def test_temporal_split_reduces_memory(self, mm):
        fop = {"m": 6, "k": 1, "n": 1}
        b = mm.inputs[1]
        replicated = derive_rtensor(mm, b, fop, 1)
        split = derive_rtensor(mm, b, fop, 3)
        assert split is not None and replicated is not None
        assert split.partition_bytes < replicated.partition_bytes

    def test_invalid_when_factor_does_not_divide_sharing(self, mm):
        fop = {"m": 6, "k": 1, "n": 1}
        b = mm.inputs[1]
        assert derive_rtensor(mm, b, fop, 4) is None

    def test_invalid_when_no_dim_large_enough(self):
        expr = matmul("tiny", m=64, k=2, n=2).expr
        fop = {"m": 64, "k": 1, "n": 1}
        b = expr.inputs[1]
        # B is 2x2; it cannot be split into 16 temporal partitions.
        assert derive_rtensor(expr, b, fop, 16) is None


class TestAlignment:
    def test_figure7_aligned_pace(self, mm):
        """Tensors rotating along k share pace 2 = min(partition lengths 2 and 3)."""
        fop = {"m": 2, "k": 1, "n": 3}
        a, b = mm.inputs
        configs = {
            "A": derive_rtensor(mm, a, fop, 3),
            "B": derive_rtensor(mm, b, fop, 2),
            "C": derive_rtensor(mm, mm.output, fop, 1),
        }
        assert all(config is not None for config in configs.values())
        aligned, paces = align_rotation_paces(mm, configs, fop)
        assert paces == {"k": 2}
        a_cfg = aligned["A"]
        b_cfg = aligned["B"]
        assert a_cfg.rp[a_cfg.rotation_dim] == 2
        assert b_cfg.rp[b_cfg.rotation_dim] == 2

    def test_pace_not_above_any_partition(self, conv):
        fop = {"b": 2, "f": 4, "c": 1, "h": 2, "w": 2, "kh": 1, "kw": 1}
        configs = {}
        for spec in conv.all_tensors:
            sharing = tensor_sharing_degree(conv, spec, fop)
            factor = max(d for d in range(1, sharing + 1) if sharing % d == 0 and d <= 4)
            config = derive_rtensor(conv, spec, fop, factor)
            if config is not None:
                configs[spec.name] = config
        aligned, paces = align_rotation_paces(conv, configs, fop)
        for config in aligned.values():
            dim = config.rotation_dim
            if dim is None:
                continue
            assert config.rp[dim] <= config.partition_shape[dim]


class TestTemporalChoices:
    def test_always_contains_one(self, mm):
        fop = {"m": 2, "k": 1, "n": 3}
        for spec in mm.all_tensors:
            assert 1 in temporal_factor_choices(mm, spec, fop)

    def test_choices_divide_sharing(self, mm):
        fop = {"m": 6, "k": 1, "n": 3}
        for spec in mm.all_tensors:
            sharing = tensor_sharing_degree(mm, spec, fop)
            for choice in temporal_factor_choices(mm, spec, fop):
                assert sharing % choice == 0

    def test_respects_max_choices(self, mm):
        fop = {"m": 6, "k": 1, "n": 3}
        b = mm.inputs[0]
        assert len(temporal_factor_choices(mm, b, fop, max_choices=2)) <= 2


class TestEnumeration:
    def test_parallelism_constraint(self, small_chip):
        expr = matmul("mm", m=256, k=256, n=256).expr
        constraints = SearchConstraints(min_core_utilization=0.9)
        fops = enumerate_operator_partitions(expr, small_chip.num_cores, constraints)
        assert fops
        for fop in fops:
            used = prod(fop.values())
            assert used <= small_chip.num_cores
            assert used >= int(0.9 * small_chip.num_cores)

    def test_padding_constraint(self, small_chip):
        expr = conv2d(
            "c", batch=2, in_channels=8, out_channels=8, height=16, width=16, kernel=3
        ).expr
        constraints = SearchConstraints(padding_threshold=0.9)
        fops = enumerate_operator_partitions(expr, small_chip.num_cores, constraints)
        for fop in fops:
            for axis, factor in fop.items():
                if factor > 1:
                    assert constraints.padding_ok(expr.axes[axis], factor)

    def test_small_operator_falls_back(self):
        expr = matmul("tiny", m=2, k=2, n=2).expr
        constraints = SearchConstraints()
        fops = enumerate_operator_partitions(expr, 1024, constraints)
        assert fops
        assert all(prod(f.values()) <= 8 for f in fops)

    def test_candidate_cap_respected(self, small_chip):
        expr = matmul("mm", m=512, k=512, n=512).expr
        constraints = SearchConstraints(max_plans=10)
        fops = enumerate_operator_partitions(expr, small_chip.num_cores, constraints)
        assert len(fops) <= 10


class TestSpaceSizes:
    def test_complete_larger_than_filtered(self, small_chip):
        expr = conv2d(
            "c", batch=4, in_channels=16, out_channels=16, height=14, width=14, kernel=3
        ).expr
        constraints = SearchConstraints()
        complete = complete_space_size(expr, small_chip.num_cores)
        filtered = filtered_space_size(expr, small_chip.num_cores, constraints)
        assert complete > filtered > 0

    def test_complete_grows_with_dimensions(self, small_chip):
        small = matmul("a", m=64, k=64, n=64).expr
        big = conv2d(
            "c", batch=8, in_channels=32, out_channels=32, height=28, width=28, kernel=3
        ).expr
        assert complete_space_size(big, small_chip.num_cores) > complete_space_size(
            small, small_chip.num_cores
        )


@settings(max_examples=25, deadline=None)
@given(
    m=st.integers(min_value=4, max_value=256),
    k=st.integers(min_value=4, max_value=256),
    n=st.integers(min_value=4, max_value=256),
)
def test_property_enumerated_partitions_valid(m, k, n):
    """Every enumerated F_op respects the core budget and axis extents."""
    expr = matmul("mm", m=m, k=k, n=n).expr
    constraints = SearchConstraints(
        core_count_samples=3, max_factorizations_per_target=40, max_temporal_combos=8
    )
    fops = enumerate_operator_partitions(expr, 64, constraints)
    assert fops
    for fop in fops:
        assert prod(fop.values()) <= 64
        for axis, factor in fop.items():
            assert 1 <= factor <= expr.axes[axis]


@settings(max_examples=25, deadline=None)
@given(
    m=st.integers(min_value=4, max_value=256),
    k=st.integers(min_value=4, max_value=256),
    n=st.integers(min_value=4, max_value=256),
)
def test_property_factors_divide_padded_shapes(m, k, n):
    """Each partition factor divides its axis's padded extent evenly.

    A sub-operator's extent is ``ceil(L / f)``; the padded axis length is
    therefore ``ceil(L / f) * f``, which every ``f`` must divide with no
    remainder and which never falls short of the original extent.
    """
    expr = matmul("mm", m=m, k=k, n=n).expr
    constraints = SearchConstraints(
        core_count_samples=3, max_factorizations_per_target=40, max_temporal_combos=8
    )
    for fop in enumerate_operator_partitions(expr, 64, constraints):
        extents = sub_extents(expr, fop)
        for axis, factor in fop.items():
            original = expr.axes[axis]
            padded = extents[axis] * factor
            assert padded % factor == 0
            assert padded >= original
            assert extents[axis] == -(-original // factor)


@settings(max_examples=25, deadline=None)
@given(
    m=st.integers(min_value=2, max_value=512),
    k=st.integers(min_value=2, max_value=512),
    n=st.integers(min_value=2, max_value=512),
    cores=st.sampled_from([8, 64, 1472]),
)
def test_property_complete_space_matches_closed_form(m, k, n, cores):
    """``complete_space_size`` equals its closed form, recomputed independently:

    ``prod_axes min(L_axis, C) * prod_tensors min(C, longest_dim)``.
    """
    expr = matmul("mm", m=m, k=k, n=n).expr
    spatial = 1.0
    for extent in expr.axes.values():
        spatial *= max(1, min(extent, cores))
    temporal = 1.0
    for spec in expr.all_tensors:
        longest = max(expr.tensor_shape(spec)) if spec.dims else 1
        temporal *= max(1, min(cores, longest))
    assert complete_space_size(expr, cores) == spatial * temporal


@settings(max_examples=15, deadline=None)
@given(
    m=st.integers(min_value=4, max_value=256),
    k=st.integers(min_value=4, max_value=256),
    n=st.integers(min_value=4, max_value=256),
)
def test_property_filtered_space_matches_closed_form(m, k, n):
    """``filtered_space_size`` is exactly |F_op candidates| x temporal combos."""
    expr = matmul("mm", m=m, k=k, n=n).expr
    constraints = SearchConstraints(
        core_count_samples=3, max_factorizations_per_target=40, max_temporal_combos=8
    )
    fops = enumerate_operator_partitions(expr, 64, constraints)
    per_tensor = 6
    combos = min(constraints.max_temporal_combos, per_tensor ** len(expr.all_tensors))
    expected = float(len(fops) * combos)
    assert filtered_space_size(
        expr, 64, constraints, temporal_choices_per_tensor=per_tensor
    ) == expected
