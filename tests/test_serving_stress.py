"""Concurrency stress tests for the serving stack's compilation path.

N threads push M graphs through schedulers sharing one plan cache and assert
the two properties the single-flight design promises under contention:

* every fingerprint is compiled **exactly once** across all threads, and
* **no request is lost** — every thread's report accounts for every request
  it submitted.

A poisoned-cache-dir variant pre-fills the disk tier with garbage entries to
check that corrupt pickles degrade to a clean recompile rather than an error.
"""

from __future__ import annotations

import threading
from typing import Callable

import pytest

from repro.core import SearchConstraints, T10Compiler
from repro.hw.spec import ChipSpec
from repro.ir import OperatorGraph, elementwise, matmul
from repro.serving import (
    InferenceRequest,
    PlanCache,
    ServedModel,
    ServingScheduler,
)
from repro.serving.plan_cache import plan_key

N_THREADS = 8
REQUESTS_PER_THREAD = 24


def build_stress_model(batch_size: int) -> OperatorGraph:
    """A three-operator MLP graph that fits the small test chip at any bucket."""
    graph = OperatorGraph(name=f"stress-b{batch_size}")
    fc1 = graph.add(matmul("fc1", m=batch_size * 8, k=64, n=64))
    act = graph.add(
        elementwise("act", {"m": batch_size * 8, "n": 64}, kind="relu"),
        inputs=[fc1],
    )
    graph.add(matmul("fc2", m=batch_size * 8, k=64, n=32), inputs=[act])
    return graph


class CountingCompiler(T10Compiler):
    """T10 compiler that counts ``compile`` calls (thread-safely)."""

    def __init__(self, *args: object, **kwargs: object) -> None:
        super().__init__(*args, **kwargs)  # type: ignore[arg-type]
        self.compile_count = 0
        self.compiled_fingerprints: list[str] = []
        self._count_lock = threading.Lock()

    def compile(self, graph):  # type: ignore[override]
        with self._count_lock:
            self.compile_count += 1
            self.compiled_fingerprints.append(graph.fingerprint())
        return super().compile(graph)


@pytest.fixture()
def counting_cache(small_chip, small_cost_model, fast_constraints, tmp_path):
    """Factory for plan caches whose compilers count their compile calls."""

    def build(cache_dir=None, jobs: int | None = 1) -> tuple[PlanCache, list[CountingCompiler]]:
        compilers: list[CountingCompiler] = []

        def factory(chip: ChipSpec, constraints: SearchConstraints) -> CountingCompiler:
            compiler = CountingCompiler(
                chip,
                cost_model=small_cost_model,
                constraints=constraints,
                jobs=jobs,
            )
            compilers.append(compiler)
            return compiler

        return PlanCache(cache_dir, compiler_factory=factory), compilers

    return build


def stress_models() -> list[ServedModel]:
    return [ServedModel("stress", build_stress_model, max_batch_size=4)]


def run_threads(target: Callable[[int], None], count: int = N_THREADS) -> None:
    threads = [threading.Thread(target=target, args=(i,)) for i in range(count)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=300)
    assert not any(thread.is_alive() for thread in threads), "stress thread hung"


class TestSingleFlightCompilation:
    def test_concurrent_misses_compile_once_per_fingerprint(
        self, small_chip, fast_constraints, counting_cache
    ):
        """N threads x M graphs: every unique fingerprint compiles exactly once."""
        cache, compilers = counting_cache()
        models = stress_models()
        graphs = models[0].bucket_graphs()  # M = 3 bucket graphs (1, 2, 4)
        errors: list[BaseException] = []

        def worker(_: int) -> None:
            try:
                for graph in graphs:
                    lookup = cache.get_or_compile(graph, small_chip, fast_constraints)
                    assert lookup.compiled.ok
            except BaseException as exc:  # surfaced after join
                errors.append(exc)

        run_threads(worker)
        assert not errors
        total_compiles = sum(compiler.compile_count for compiler in compilers)
        assert total_compiles == len(graphs)
        assert cache.stats.misses == len(graphs)
        assert cache.stats.lookups == N_THREADS * len(graphs)
        # Everyone else rode the leader's compile as a hit.
        assert cache.stats.hits == (N_THREADS - 1) * len(graphs)

    def test_schedulers_sharing_cache_lose_no_requests(
        self, small_chip, fast_constraints, counting_cache
    ):
        """Each thread serves its own workload; all requests are accounted for."""
        cache, compilers = counting_cache()
        reports: dict[int, object] = {}
        errors: list[BaseException] = []

        def worker(thread_index: int) -> None:
            try:
                scheduler = ServingScheduler(
                    stress_models(),
                    chip=small_chip,
                    num_chips=2,
                    constraints=fast_constraints,
                    plan_cache=cache,
                )
                requests = [
                    InferenceRequest(
                        request_id=thread_index * REQUESTS_PER_THREAD + i,
                        model="stress",
                        arrival_time=i * 1e-3,
                    )
                    for i in range(REQUESTS_PER_THREAD)
                ]
                reports[thread_index] = scheduler.serve(requests)
            except BaseException as exc:
                errors.append(exc)

        run_threads(worker)
        assert not errors
        assert len(reports) == N_THREADS
        for thread_index, report in reports.items():
            completed = report.completed
            assert len(completed) == REQUESTS_PER_THREAD
            served_ids = {record.request.request_id for record in completed}
            expected = {
                thread_index * REQUESTS_PER_THREAD + i
                for i in range(REQUESTS_PER_THREAD)
            }
            assert served_ids == expected, "requests were lost or duplicated"
            assert all(record.ok for record in completed)
        # Across all 8 schedulers, each padded bucket compiled exactly once.
        fingerprints = [
            fp for compiler in compilers for fp in compiler.compiled_fingerprints
        ]
        assert len(fingerprints) == len(set(fingerprints)), (
            "a fingerprint compiled more than once despite single-flight"
        )

    def test_poisoned_cache_dir_recompiles_cleanly(
        self, small_chip, fast_constraints, counting_cache, tmp_path
    ):
        """Corrupt disk entries degrade to a recompile, never an error."""
        cache_dir = tmp_path / "poisoned"
        cache_dir.mkdir()
        models = stress_models()
        graphs = models[0].bucket_graphs()
        # Poison the exact keys the scheduler will look up, plus a stray file.
        for graph in graphs:
            key = plan_key(graph, small_chip, fast_constraints)
            (cache_dir / f"{key}.plan.pkl").write_bytes(b"not a pickle at all")
        (cache_dir / "unrelated.plan.pkl").write_text("junk")

        cache, compilers = counting_cache(cache_dir=cache_dir)
        errors: list[BaseException] = []

        def worker(_: int) -> None:
            try:
                for graph in graphs:
                    lookup = cache.get_or_compile(graph, small_chip, fast_constraints)
                    assert lookup.compiled.ok
            except BaseException as exc:
                errors.append(exc)

        run_threads(worker)
        assert not errors
        # Poison never counts as a disk hit, and each fingerprint still
        # compiled exactly once.
        assert cache.stats.hits_disk == 0
        assert sum(compiler.compile_count for compiler in compilers) == len(graphs)
        # The poisoned entries were overwritten with valid programs: a fresh
        # cache over the same directory now hits disk without compiling.
        fresh, fresh_compilers = counting_cache(cache_dir=cache_dir)
        for graph in graphs:
            lookup = fresh.get_or_compile(graph, small_chip, fast_constraints)
            assert lookup.outcome == "hit-disk"
            assert lookup.compiled.ok
        assert sum(compiler.compile_count for compiler in fresh_compilers) == 0

    def test_parallel_jobs_under_thread_contention(
        self, small_chip, fast_constraints, counting_cache
    ):
        """Single-flight holds when misses themselves compile with jobs>1."""
        cache, compilers = counting_cache(jobs=2)
        models = stress_models()
        graphs = models[0].bucket_graphs()
        errors: list[BaseException] = []

        def worker(_: int) -> None:
            try:
                for graph in graphs:
                    lookup = cache.get_or_compile(graph, small_chip, fast_constraints)
                    assert lookup.compiled.ok
            except BaseException as exc:
                errors.append(exc)

        run_threads(worker, count=4)
        assert not errors
        assert sum(compiler.compile_count for compiler in compilers) == len(graphs)
        cache.close()


class TestDefaultJobsIntegration:
    def test_scheduler_default_jobs_serves_correctly(self, small_chip, fast_constraints):
        """The scheduler's auto-jobs default produces a clean serving run."""
        scheduler = ServingScheduler(
            stress_models(),
            chip=small_chip,
            constraints=fast_constraints,
        )
        assert scheduler.plan_cache.jobs is None  # auto policy
        requests = [
            InferenceRequest(request_id=i, model="stress", arrival_time=i * 1e-3)
            for i in range(8)
        ]
        report = scheduler.serve(requests)
        assert len(report.completed) == 8
        assert all(record.ok for record in report.completed)
        scheduler.close()

    def test_close_leaves_caller_supplied_cache_usable(
        self, small_chip, fast_constraints, counting_cache
    ):
        """Closing one scheduler must not tear down a shared cache's compilers."""
        cache, compilers = counting_cache(jobs=2)
        first = ServingScheduler(
            stress_models(), chip=small_chip, constraints=fast_constraints,
            plan_cache=cache,
        )
        first.batch_latency("stress", 1)
        first.close()  # no-op: the cache is not owned by this scheduler
        # A second scheduler sharing the cache still compiles fresh buckets.
        second = ServingScheduler(
            stress_models(), chip=small_chip, constraints=fast_constraints,
            plan_cache=cache,
        )
        assert second.batch_latency("stress", 4) > 0
        cache.close()  # the owner releases the pools once everyone is done

    def test_jobs_with_supplied_cache_rejected(
        self, small_chip, fast_constraints, counting_cache
    ):
        """jobs cannot retune a caller-supplied cache's compilers."""
        cache, _ = counting_cache()
        with pytest.raises(ValueError, match="jobs has no effect"):
            ServingScheduler(
                stress_models(), chip=small_chip, constraints=fast_constraints,
                plan_cache=cache, jobs=8,
            )
