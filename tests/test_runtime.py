"""Tests for the executor, metrics helpers and the sub-task profiler."""

from __future__ import annotations

import math

import pytest

from repro.baselines import RollerCompiler
from repro.hw.simulator import OpTiming, SimulationResult
from repro.ir import OperatorGraph, elementwise, matmul
from repro.runtime import (
    EvaluationResult,
    SubTaskProfiler,
    average_speedup,
    bandwidth_utilization_gbps,
    comm_fraction,
    goodput_rps,
    latency_breakdown,
    latency_percentiles,
    per_operator_speedups,
    percentile,
    slo_attainment,
    speedup_distribution,
    throughput_rps,
)


def small_graph() -> OperatorGraph:
    graph = OperatorGraph(name="tiny-mlp")
    fc1 = matmul("fc1", m=256, k=128, n=256)
    act = elementwise("act", {"r": 256, "c": 256}, kind="relu", num_inputs=1)
    graph.add(fc1)
    graph.add(act, [fc1])
    return graph


class TestExecutor:
    def test_evaluate_t10(self, small_executor, small_compiler):
        result = small_executor.evaluate(small_compiler, small_graph())
        assert result.ok
        assert result.latency > 0
        assert result.compiler_name == "CompiledModel" or result.status == "ok"
        assert 0 <= result.comm_fraction <= 1

    def test_evaluate_baseline_records_name(self, small_executor, small_chip):
        result = small_executor.evaluate(RollerCompiler(small_chip), small_graph())
        assert result.ok
        assert result.compiler_name == "Roller"

    def test_run_rejects_failed_compilation(self, small_executor, small_chip):
        class FailedCompilation:
            ok = False
            status = "oom"

        with pytest.raises(ValueError):
            small_executor.run(FailedCompilation())

    def test_speedup_over(self):
        fast = EvaluationResult("a", "m", "c", "ok", latency=1.0)
        slow = EvaluationResult("b", "m", "c", "ok", latency=2.0)
        assert fast.speedup_over(slow) == pytest.approx(2.0)
        assert math.isnan(fast.speedup_over(EvaluationResult("c", "m", "c", "oom")))


class TestMetrics:
    def make_result(self, compute=1.0, shift=0.5):
        result = SimulationResult(program_name="p")
        result.compute_time = compute
        result.shift_time = shift
        result.intercore_bytes_per_core = 1e9
        result.per_op = {
            "a": OpTiming(compute=0.6, intercore=0.2),
            "b": OpTiming(compute=0.4, intercore=0.3),
        }
        return result

    def test_latency_breakdown(self):
        breakdown = latency_breakdown(self.make_result())
        assert breakdown["compute"] == pytest.approx(1.0)
        assert breakdown["intercore"] == pytest.approx(0.5)
        assert breakdown["total"] == pytest.approx(1.5)

    def test_comm_fraction(self):
        assert comm_fraction(self.make_result()) == pytest.approx(0.5 / 1.5)

    def test_bandwidth_utilization_gbps(self):
        assert bandwidth_utilization_gbps(self.make_result()) == pytest.approx(2.0)

    def test_per_operator_speedups(self):
        baseline = self.make_result()
        optimized = SimulationResult(program_name="q")
        optimized.per_op = {
            "a": OpTiming(compute=0.2, intercore=0.2),
            "b": OpTiming(compute=0.35, intercore=0.35),
        }
        speedups = per_operator_speedups(baseline, optimized)
        assert speedups["a"] == pytest.approx(0.8 / 0.4)
        assert speedups["b"] == pytest.approx(0.7 / 0.7)

    def test_speedup_distribution(self):
        stats = speedup_distribution({"a": 2.0, "b": 0.5, "c": 1.5})
        assert stats["count"] == 3
        assert stats["max"] == 2.0
        assert stats["improved_fraction"] == pytest.approx(2 / 3)
        assert stats["regressed_fraction"] == pytest.approx(1 / 3)
        assert stats["unchanged_fraction"] == 0.0

    def test_speedup_distribution_counts_unchanged(self):
        # Exactly-1.0 speedups belong to their own bucket; the three
        # fractions partition the operators (regression: they used to sum
        # below 1 whenever any operator was unchanged).
        stats = speedup_distribution({"a": 2.0, "b": 1.0, "c": 0.5, "d": 1.0})
        assert stats["improved_fraction"] == 0.25
        assert stats["regressed_fraction"] == 0.25
        assert stats["unchanged_fraction"] == 0.5
        assert (
            stats["improved_fraction"]
            + stats["regressed_fraction"]
            + stats["unchanged_fraction"]
            == 1.0
        )

    def test_speedup_distribution_empty(self):
        stats = speedup_distribution({})
        assert stats["count"] == 0
        assert stats["unchanged_fraction"] == 0.0

    def test_throughput_rps(self):
        assert throughput_rps(10, 2.0) == pytest.approx(5.0)
        assert throughput_rps(0, 2.0) == 0.0
        assert throughput_rps(0, 0.0) == 0.0

    def test_throughput_rps_degenerate_window_is_nan(self):
        # Completions over an instant (or negative) window have no rate;
        # regression: this used to report 0.0, indistinguishable from a
        # genuinely idle server.
        assert math.isnan(throughput_rps(5, 0.0))
        assert math.isnan(throughput_rps(5, -1.0))

    def test_percentile_interpolates(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 50.0) == pytest.approx(2.5)
        assert percentile(values, 25.0) == pytest.approx(1.75)

    def test_percentile_empty_input_is_nan(self):
        # "No data" renders as nan, not 0 — an SLO dashboard must be able to
        # distinguish an idle server from a perfectly fast one.
        assert math.isnan(percentile([], 50.0))
        tails = latency_percentiles([])
        assert all(math.isnan(value) for value in tails.values())

    def test_percentile_single_sample_is_that_sample(self):
        for q in (0.0, 37.5, 50.0, 100.0):
            assert percentile([4.2], q) == 4.2

    def test_percentile_q0_and_q100_are_the_extremes(self):
        values = [5.0, 1.0, 3.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 100.0) == 5.0

    def test_percentile_rejects_out_of_range_q(self):
        with pytest.raises(ValueError):
            percentile([1.0], -0.1)
        with pytest.raises(ValueError):
            percentile([1.0], 100.1)

    def test_slo_attainment(self):
        latencies = [0.5, 1.0, 1.5, 2.0]
        assert slo_attainment(latencies, 1.0) == pytest.approx(0.5)
        assert slo_attainment(latencies, 2.0) == 1.0
        assert slo_attainment(latencies, 0.1) == 0.0
        assert math.isnan(slo_attainment([], 1.0))
        with pytest.raises(ValueError):
            slo_attainment(latencies, -1.0)

    def test_goodput_rps_counts_only_slo_met(self):
        assert goodput_rps(5, 2.0) == pytest.approx(2.5)
        assert goodput_rps(0, 2.0) == 0.0
        assert math.isnan(goodput_rps(3, 0.0))
        with pytest.raises(ValueError):
            goodput_rps(-1, 2.0)

    def test_average_speedup(self):
        a = EvaluationResult("roller", "m", "c", "ok", latency=2.0)
        b = EvaluationResult("t10", "m", "c", "ok", latency=1.0)
        assert average_speedup([(a, b)]) == pytest.approx(2.0)

    def test_average_speedup_empty(self):
        assert math.isnan(average_speedup([]))


class TestProfiler:
    def test_profile_counts(self, small_chip):
        profiler = SubTaskProfiler(small_chip)
        report = profiler.profile(op_types=("matmul", "softmax"), samples_per_type=8)
        assert report.sample_count() == 16
        assert set(report.samples) == {"matmul", "softmax"}

    def test_fit_cost_model(self, small_chip):
        profiler = SubTaskProfiler(small_chip)
        cost_model = profiler.fit_cost_model(op_types=("matmul",), samples_per_type=16)
        assert cost_model.has_model("matmul")

    def test_fit_comm_model(self, small_chip):
        comm = SubTaskProfiler(small_chip).fit_comm_model()
        assert comm.predict(1024) > 0
