"""Tests for the synthetic arrival-trace generators (repro.serving.traffic)."""

from __future__ import annotations

import math
import random

import pytest

from repro.serving import (
    SLO_BEST_EFFORT,
    SLO_INTERACTIVE,
    DiurnalPattern,
    FlashCrowdPattern,
    burstiness,
    bursty_workload,
    decode_workload,
    diurnal_workload,
    expected_arrivals,
    flash_crowd_workload,
    merge_decode_workloads,
    mmpp_arrivals,
    poisson_arrivals,
    trace_workload,
    windowed_rates,
)


# --------------------------------------------------------------------------- #
# Rate patterns
# --------------------------------------------------------------------------- #
class TestPatterns:
    def test_diurnal_cycle_shape(self):
        pattern = DiurnalPattern(base_rate=10.0, period=100.0, amplitude=0.5)
        assert pattern.rate(0.0) == pytest.approx(10.0)
        assert pattern.rate(25.0) == pytest.approx(15.0)  # peak at quarter period
        assert pattern.rate(75.0) == pytest.approx(5.0)  # trough at three quarters
        assert pattern.rate(100.0) == pytest.approx(10.0)  # periodic
        assert pattern.peak_rate == pytest.approx(15.0)

    def test_diurnal_phase_shift(self):
        shifted = DiurnalPattern(base_rate=10.0, period=100.0, amplitude=0.5, phase=25.0)
        assert shifted.rate(50.0) == pytest.approx(15.0)

    def test_diurnal_validation(self):
        with pytest.raises(ValueError, match="base_rate"):
            DiurnalPattern(base_rate=0.0, period=10.0)
        with pytest.raises(ValueError, match="period"):
            DiurnalPattern(base_rate=1.0, period=0.0)
        with pytest.raises(ValueError, match="amplitude"):
            DiurnalPattern(base_rate=1.0, period=10.0, amplitude=1.5)

    def test_flash_crowd_piecewise_shape(self):
        pattern = FlashCrowdPattern(
            base_rate=2.0, start=10.0, ramp=4.0, hold=6.0, decay=8.0, peak_multiplier=4.0
        )
        assert pattern.rate(0.0) == pytest.approx(2.0)  # baseline before
        assert pattern.rate(12.0) == pytest.approx(5.0)  # halfway up the ramp
        assert pattern.rate(14.0) == pytest.approx(8.0)  # ramp complete
        assert pattern.rate(17.0) == pytest.approx(8.0)  # holding the peak
        assert pattern.rate(24.0) == pytest.approx(5.0)  # halfway down the decay
        assert pattern.rate(28.0) == pytest.approx(2.0)  # baseline after
        assert pattern.peak_rate == pytest.approx(8.0)

    def test_flash_crowd_zero_ramp_and_decay(self):
        pattern = FlashCrowdPattern(
            base_rate=1.0, start=5.0, ramp=0.0, hold=2.0, decay=0.0, peak_multiplier=3.0
        )
        assert pattern.rate(4.999) == pytest.approx(1.0)
        assert pattern.rate(5.0) == pytest.approx(3.0)
        assert pattern.rate(6.999) == pytest.approx(3.0)
        assert pattern.rate(7.0) == pytest.approx(1.0)

    def test_flash_crowd_validation(self):
        with pytest.raises(ValueError, match="base_rate"):
            FlashCrowdPattern(base_rate=0.0, start=1.0, ramp=1.0, hold=1.0, decay=1.0)
        with pytest.raises(ValueError, match=">= 0"):
            FlashCrowdPattern(base_rate=1.0, start=-1.0, ramp=1.0, hold=1.0, decay=1.0)
        with pytest.raises(ValueError, match="peak_multiplier"):
            FlashCrowdPattern(
                base_rate=1.0, start=1.0, ramp=1.0, hold=1.0, decay=1.0,
                peak_multiplier=0.5,
            )

    def test_expected_arrivals_constant_rate(self):
        assert expected_arrivals(lambda t: 3.0, duration=10.0) == pytest.approx(30.0)

    def test_expected_arrivals_diurnal_integrates_to_base(self):
        # Over a whole period the sinusoid cancels: E[N] = base_rate * duration.
        pattern = DiurnalPattern(base_rate=5.0, period=40.0, amplitude=0.8)
        assert expected_arrivals(pattern, duration=40.0) == pytest.approx(
            200.0, rel=1e-4
        )

    def test_expected_arrivals_validation(self):
        with pytest.raises(ValueError, match="duration"):
            expected_arrivals(lambda t: 1.0, duration=0.0)
        with pytest.raises(ValueError, match="steps"):
            expected_arrivals(lambda t: 1.0, duration=1.0, steps=0)


# --------------------------------------------------------------------------- #
# Arrival samplers: determinism and rate conservation
# --------------------------------------------------------------------------- #
class TestPoissonArrivals:
    def test_seeded_replay_is_bit_identical(self):
        pattern = DiurnalPattern(base_rate=20.0, period=50.0)
        first = list(poisson_arrivals(pattern, duration=100.0, seed=7))
        second = list(poisson_arrivals(pattern, duration=100.0, seed=7))
        assert first == second
        assert list(poisson_arrivals(pattern, duration=100.0, seed=8)) != first

    def test_times_sorted_and_in_range(self):
        pattern = DiurnalPattern(base_rate=20.0, period=50.0)
        times = list(poisson_arrivals(pattern, duration=100.0, seed=1))
        assert times == sorted(times)
        assert all(0.0 <= t < 100.0 for t in times)

    def test_rate_conservation_against_expected_integral(self):
        # The realised count matches the deterministic rate integral up to
        # Poisson noise (4 sigma keeps the seeded test safely deterministic).
        pattern = DiurnalPattern(base_rate=50.0, period=60.0, amplitude=0.6)
        times = list(poisson_arrivals(pattern, duration=120.0, seed=3))
        expected = expected_arrivals(pattern, duration=120.0)
        assert abs(len(times) - expected) < 4.0 * math.sqrt(expected)

    def test_lazy_iterator_streams_without_materialising(self):
        pattern = DiurnalPattern(base_rate=1e6, period=1e3)
        stream = poisson_arrivals(pattern, duration=1e3, seed=0)
        first = [next(stream) for _ in range(1000)]
        assert first == sorted(first)

    def test_duration_validation(self):
        pattern = DiurnalPattern(base_rate=1.0, period=1.0)
        with pytest.raises(ValueError, match="duration"):
            next(poisson_arrivals(pattern, duration=0.0))


class TestMMPPArrivals:
    def test_seeded_replay_is_bit_identical(self):
        kwargs = dict(
            quiet_rate=2.0, burst_rate=40.0, mean_quiet=10.0, mean_burst=3.0,
            duration=200.0,
        )
        assert list(mmpp_arrivals(seed=5, **kwargs)) == list(
            mmpp_arrivals(seed=5, **kwargs)
        )
        assert list(mmpp_arrivals(seed=6, **kwargs)) != list(
            mmpp_arrivals(seed=5, **kwargs)
        )

    def test_times_sorted_and_in_range(self):
        times = list(
            mmpp_arrivals(
                quiet_rate=2.0, burst_rate=40.0, mean_quiet=10.0, mean_burst=3.0,
                duration=200.0, seed=1,
            )
        )
        assert times == sorted(times)
        assert all(0.0 <= t < 200.0 for t in times)

    def test_long_run_rate_between_quiet_and_burst(self):
        times = list(
            mmpp_arrivals(
                quiet_rate=2.0, burst_rate=40.0, mean_quiet=10.0, mean_burst=3.0,
                duration=2000.0, seed=2,
            )
        )
        mean_rate = len(times) / 2000.0
        assert 2.0 < mean_rate < 40.0
        # The stationary mean is the sojourn-weighted rate mixture.
        stationary = (2.0 * 10.0 + 40.0 * 3.0) / (10.0 + 3.0)
        assert mean_rate == pytest.approx(stationary, rel=0.25)

    def test_is_burstier_than_stationary_poisson(self):
        window = 10.0
        bursty = mmpp_arrivals(
            quiet_rate=1.0, burst_rate=50.0, mean_quiet=20.0, mean_burst=4.0,
            duration=400.0, seed=3,
        )
        flat_pattern = DiurnalPattern(base_rate=10.0, period=400.0, amplitude=0.0)
        flat = poisson_arrivals(flat_pattern, duration=400.0, seed=3)
        assert burstiness(list(bursty), window=window) > 2.0
        assert burstiness(list(flat), window=window) < 2.0

    def test_validation(self):
        with pytest.raises(ValueError, match="rate"):
            next(
                mmpp_arrivals(
                    quiet_rate=0.0, burst_rate=1.0, mean_quiet=1.0, mean_burst=1.0,
                    duration=1.0,
                )
            )
        with pytest.raises(ValueError, match="mean"):
            next(
                mmpp_arrivals(
                    quiet_rate=1.0, burst_rate=1.0, mean_quiet=0.0, mean_burst=1.0,
                    duration=1.0,
                )
            )


# --------------------------------------------------------------------------- #
# Workload synthesis
# --------------------------------------------------------------------------- #
class TestTraceWorkload:
    def test_attributes_mirror_decode_workload_semantics(self):
        trace = diurnal_workload(
            "alpha",
            base_rate=30.0,
            period=20.0,
            duration=40.0,
            seed=11,
            prompt_tokens=(8, 16),
            output_tokens=(2, 6),
            interactive_fraction=0.5,
            slo_seconds=0.25,
            tenant="team-a",
        )
        assert trace
        for index, req in enumerate(trace):
            assert req.request_id == index
            assert req.model == "alpha"
            assert req.tenant == "team-a"
            assert 8 <= req.prompt_tokens <= 16
            assert 2 <= req.max_new_tokens <= 6
            if req.slo_class == SLO_INTERACTIVE:
                assert req.deadline == pytest.approx(req.arrival_time + 0.25)
            else:
                assert req.slo_class == SLO_BEST_EFFORT
                assert req.deadline is None

    def test_callable_slo_scales_with_work(self):
        trace = flash_crowd_workload(
            "alpha",
            base_rate=20.0,
            start=2.0,
            ramp=2.0,
            hold=2.0,
            decay=2.0,
            duration=10.0,
            seed=4,
            interactive_fraction=1.0,
            slo_seconds=lambda prompt, output: 0.001 * (prompt + output),
        )
        for req in trace:
            expected = 0.001 * (req.prompt_tokens + req.max_new_tokens)
            assert req.deadline == pytest.approx(req.arrival_time + expected)

    def test_seeded_workloads_replay_bit_identically(self):
        kwargs = dict(
            quiet_rate=3.0, burst_rate=30.0, mean_quiet=8.0, mean_burst=2.0,
            duration=60.0, seed=9, tenant="spiky",
        )
        assert bursty_workload("alpha", **kwargs) == bursty_workload("alpha", **kwargs)

    def test_max_requests_truncates_lazily(self):
        full = diurnal_workload(
            "alpha", base_rate=50.0, period=10.0, duration=20.0, seed=2
        )
        capped = diurnal_workload(
            "alpha", base_rate=50.0, period=10.0, duration=20.0, seed=2, max_requests=10
        )
        assert len(capped) == 10
        assert capped == full[:10]

    def test_validation(self):
        with pytest.raises(ValueError, match="interactive_fraction"):
            trace_workload([0.0], "alpha", rng=random.Random(0), interactive_fraction=2.0)
        with pytest.raises(ValueError, match="max_requests"):
            trace_workload([0.0], "alpha", rng=random.Random(0), max_requests=0)


# --------------------------------------------------------------------------- #
# Shape assertions and analysis helpers
# --------------------------------------------------------------------------- #
class TestTraceShapes:
    def test_flash_crowd_spike_shows_in_windowed_rates(self):
        duration, window = 120.0, 10.0
        trace = flash_crowd_workload(
            "alpha",
            base_rate=5.0,
            start=60.0,
            ramp=10.0,
            hold=20.0,decay=10.0,
            peak_multiplier=6.0,
            duration=duration,
            seed=13,
        )
        rates = dict(windowed_rates(trace, window=window, start=0.0, end=duration))
        baseline = sum(rates[t] for t in (0.0, 10.0, 20.0, 30.0)) / 4.0
        peak = max(rates[70.0], rates[80.0])  # the hold plateau
        assert peak > 3.0 * baseline
        # After the decay the rate falls back toward baseline.
        assert rates[110.0] < 2.0 * baseline

    def test_diurnal_peak_window_beats_trough_window(self):
        period = 80.0
        trace = diurnal_workload(
            "alpha", base_rate=20.0, period=period, amplitude=0.8, duration=period,
            seed=17,
        )
        rates = dict(windowed_rates(trace, window=20.0, start=0.0, end=period))
        assert rates[0.0] + rates[20.0] > rates[40.0] + rates[60.0]

    def test_windowed_rates_conserve_the_trace(self):
        trace = bursty_workload(
            "alpha",
            quiet_rate=4.0, burst_rate=40.0, mean_quiet=6.0, mean_burst=2.0,
            duration=50.0, seed=21,
        )
        window = 5.0
        series = windowed_rates(trace, window=window, start=0.0, end=50.0)
        counted = sum(rate * window for _, rate in series)
        assert counted == pytest.approx(len(trace))

    def test_windowed_rates_validation_and_empty(self):
        with pytest.raises(ValueError, match="window"):
            windowed_rates([], window=0.0)
        assert windowed_rates([], window=1.0, start=5.0, end=5.0) == []
        assert math.isnan(burstiness([], window=1.0))


# --------------------------------------------------------------------------- #
# Merge compatibility with the stationary generators
# --------------------------------------------------------------------------- #
class TestMergeCompatibility:
    def test_traces_merge_with_decode_workload_streams(self):
        diurnal = diurnal_workload(
            "alpha", base_rate=10.0, period=30.0, duration=30.0, seed=1,
            tenant="steady",
        )
        spiky = bursty_workload(
            "alpha",
            quiet_rate=2.0, burst_rate=20.0, mean_quiet=5.0, mean_burst=2.0,
            duration=30.0, seed=2, tenant="spiky",
        )
        stationary = decode_workload(
            "alpha", num_requests=40, rate=3.0, seed=3, tenant="flat"
        )
        merged = merge_decode_workloads(diurnal, spiky, stationary)
        assert len(merged) == len(diurnal) + len(spiky) + len(stationary)
        times = [req.arrival_time for req in merged]
        assert times == sorted(times)
        assert [req.request_id for req in merged] == list(range(len(merged)))
        assert {req.tenant for req in merged} == {"steady", "spiky", "flat"}

    def test_merge_is_permutation_invariant(self):
        a = diurnal_workload(
            "alpha", base_rate=8.0, period=10.0, duration=10.0, seed=4, tenant="a"
        )
        b = flash_crowd_workload(
            "alpha", base_rate=4.0, start=2.0, ramp=2.0, hold=2.0, decay=2.0,
            duration=10.0, seed=5, tenant="b",
        )
        assert merge_decode_workloads(a, b) == merge_decode_workloads(b, a)
