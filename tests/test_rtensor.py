"""Tests for the rTensor configuration abstraction."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.rtensor import RTensorConfig
from repro.ir.tensor import TensorRole, tensor
from repro.utils import ceil_div, divisors, prod


def make_config(shape=(8, 16), fs=(2, 1), ft=(1, 4), rp=(0, 4), sharing=4, dtype_bytes=2):
    return RTensorConfig(
        spec=tensor("B", ["k", "n"], TensorRole.WEIGHT),
        shape=shape,
        dtype_bytes=dtype_bytes,
        fs=fs,
        ft=ft,
        rp=rp,
        sharing_degree=sharing,
    )


class TestShapes:
    def test_sub_tensor_shape(self):
        config = make_config()
        assert config.sub_tensor_shape == (4, 16)

    def test_partition_shape(self):
        config = make_config()
        assert config.partition_shape == (4, 4)

    def test_explicit_sub_shape_wins(self):
        config = RTensorConfig(
            spec=tensor("I", ["h+kh"]),
            shape=(10,),
            dtype_bytes=2,
            fs=(2,),
            ft=(1,),
            rp=(0,),
            sharing_degree=1,
            sub_shape=(7,),
        )
        assert config.sub_tensor_shape == (7,)

    def test_bytes(self):
        config = make_config()
        assert config.tensor_bytes == 8 * 16 * 2
        assert config.sub_tensor_bytes == 4 * 16 * 2
        assert config.partition_bytes == 4 * 4 * 2


class TestRotation:
    def test_rotation_dim_and_axis(self):
        config = make_config()
        assert config.rotation_dim == 1
        assert config.rotation_axis == "n"
        assert config.is_rotated

    def test_unrotated(self):
        config = make_config(ft=(1, 1), rp=(0, 0), sharing=4)
        assert config.rotation_dim is None
        assert not config.is_rotated
        assert config.shifted_bytes_per_cycle == 0
        assert config.bytes_per_shift == 0

    def test_rotation_steps(self):
        config = make_config()
        # Sub-tensor length 16 along n, pace 4 -> 4 steps.
        assert config.rotation_steps == 4

    def test_shifted_bytes_per_cycle(self):
        config = make_config()
        per_shift = config.bytes_per_shift
        assert config.shifted_bytes_per_cycle == per_shift * (config.rotation_steps - 1)

    def test_num_rings_and_replication(self):
        config = make_config(ft=(1, 2), rp=(0, 8), sharing=4)
        assert config.temporal_factor == 2
        assert config.num_rings == 2
        assert config.replication_bytes == config.sub_tensor_bytes


class TestValidation:
    def test_rejects_mismatched_rank(self):
        with pytest.raises(ValueError):
            make_config(fs=(2,))

    def test_rejects_zero_factor(self):
        with pytest.raises(ValueError):
            make_config(fs=(0, 1))

    def test_rejects_temporal_exceeding_sharing(self):
        with pytest.raises(ValueError):
            make_config(ft=(1, 8), rp=(0, 2), sharing=4)

    def test_rejects_temporal_exceeding_extent(self):
        with pytest.raises(ValueError):
            make_config(shape=(8, 2), ft=(1, 4), rp=(0, 1), sharing=4)

    def test_rejects_pace_exceeding_partition(self):
        with pytest.raises(ValueError):
            make_config(rp=(0, 5))

    def test_rejects_bad_sharing(self):
        with pytest.raises(ValueError):
            make_config(sharing=0)

    def test_describe_mentions_name(self):
        assert "B" in make_config().describe()


@given(
    k=st.integers(min_value=1, max_value=64),
    n=st.integers(min_value=1, max_value=64),
    fs_k=st.integers(min_value=1, max_value=8),
    sharing=st.sampled_from([1, 2, 4, 8, 16]),
)
def test_property_partition_never_larger_than_sub_tensor(k, n, fs_k, sharing):
    """Per-core memory never exceeds the sub-tensor, for any valid split."""
    fs = (min(fs_k, k), 1)
    feasible_ft = [d for d in divisors(sharing) if d <= n]
    for ft_n in feasible_ft:
        config = RTensorConfig(
            spec=tensor("B", ["k", "n"]),
            shape=(k, n),
            dtype_bytes=2,
            fs=fs,
            ft=(1, ft_n),
            rp=(0, ceil_div(n, ft_n)) if ft_n > 1 else (0, 0),
            sharing_degree=sharing,
        )
        assert config.partition_bytes <= config.sub_tensor_bytes
        assert config.num_rings * config.temporal_factor == sharing
        assert prod(config.partition_shape) > 0
