"""Tests for the model zoo builders and the registry."""

from __future__ import annotations

import pytest

from repro.models import (
    DNN_MODELS,
    LLM_MODELS,
    MODEL_REGISTRY,
    build_bert,
    build_llama,
    build_model,
    build_nerf,
    build_opt,
    build_resnet,
    build_retnet,
    build_vit,
    get_entry,
    list_models,
)


class TestRegistry:
    def test_all_models_listed(self):
        names = list_models()
        for model in DNN_MODELS + LLM_MODELS:
            assert model in names

    def test_get_entry_unknown(self):
        with pytest.raises(KeyError):
            get_entry("alexnet")

    def test_build_model_dispatch(self):
        graph = build_model("bert", 1, num_layers=1)
        assert len(graph) > 0

    def test_batch_sizes_nonempty(self):
        for entry in MODEL_REGISTRY.values():
            assert entry.batch_sizes
            assert all(b >= 1 for b in entry.batch_sizes)


class TestBert:
    def test_parameter_count_close_to_reference(self):
        graph = build_bert(1)
        # BERT-large is ~340M parameters (embeddings + 24 encoder layers).
        assert 250e6 < graph.num_parameters < 420e6

    def test_layer_truncation(self):
        small = build_bert(1, num_layers=2)
        full = build_bert(1, num_layers=4)
        assert len(full) > len(small)

    def test_batch_scales_flops_not_params(self):
        bs1 = build_bert(1, num_layers=1)
        bs4 = build_bert(4, num_layers=1)
        assert bs4.total_flops > bs1.total_flops
        assert bs4.num_parameters == bs1.num_parameters

    def test_rejects_bad_batch(self):
        with pytest.raises(ValueError):
            build_bert(0)


class TestViT:
    def test_parameter_count(self):
        graph = build_vit(1)
        assert 60e6 < graph.num_parameters < 110e6

    def test_contains_class_head(self):
        assert "cls_head" in build_vit(1, num_layers=1)


class TestResNet:
    def test_parameter_count(self):
        graph = build_resnet(1)
        assert 8e6 < graph.num_parameters < 16e6

    def test_has_convolutions(self):
        histogram = build_resnet(1).op_type_histogram()
        assert histogram.get("conv2d", 0) >= 16

    def test_batch_increases_activations(self):
        assert build_resnet(8).total_activation_bytes > build_resnet(1).total_activation_bytes


class TestNeRF:
    def test_parameter_count_small(self):
        graph = build_nerf(1)
        assert graph.num_parameters < 100e3

    def test_activation_heavy(self):
        graph = build_nerf(1)
        assert graph.total_activation_bytes > 100 * graph.total_weight_bytes

    def test_custom_sample_count(self):
        small = build_nerf(1, samples_per_batch=1024)
        assert small.total_flops < build_nerf(1).total_flops


class TestLLMs:
    def test_opt_sizes(self):
        for size in ("1.3b", "13b"):
            graph = build_opt(1, size=size, num_layers=1)
            assert len(graph) > 0

    def test_opt_unknown_size(self):
        with pytest.raises(ValueError):
            build_opt(1, size="170b")

    def test_opt_13b_layer_params(self):
        graph = build_opt(1, size="13b", num_layers=1)
        # One OPT-13B decoder layer has roughly 13e9 / 40 ~ 325M parameters.
        assert 200e6 < graph.num_parameters < 450e6

    def test_llama_gated_ffn(self):
        graph = build_llama(1, size="7b", num_layers=1)
        assert any(op.name.endswith("ffn_gate") for op in graph.operators)

    def test_llama_unknown_size(self):
        with pytest.raises(ValueError):
            build_llama(1, size="70b")

    def test_retnet_builds(self):
        graph = build_retnet(2, num_layers=1)
        assert any("state_update" in op.name for op in graph.operators)

    def test_decode_batch_scaling(self):
        small = build_opt(2, size="1.3b", num_layers=1)
        large = build_opt(128, size="1.3b", num_layers=1)
        assert large.total_flops > small.total_flops


class TestGraphWellFormed:
    @pytest.mark.parametrize("name", DNN_MODELS)
    def test_dnn_models_build(self, name):
        kwargs = {"num_layers": 1} if name in ("bert", "vit") else {}
        graph = build_model(name, get_batch(name), **kwargs)
        assert len(graph) > 0
        assert graph.total_flops > 0


def get_batch(name: str) -> int:
    return MODEL_REGISTRY[name].batch_sizes[0]
