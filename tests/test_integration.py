"""End-to-end integration tests on the full IPU MK2 configuration.

These check the headline qualitative results of the paper on (truncated)
real workloads: T10 beats the VGM baselines, its communication fraction is
lower, the vendor baseline runs out of memory where the paper says it does,
and the virtual-IPU / LLM paths work end to end.
"""

from __future__ import annotations

import pytest

from repro.baselines import GPURooflineModel, PopARTCompiler, RollerCompiler
from repro.core import T10Compiler
from repro.core.constraints import SearchConstraints
from repro.hw.spec import IPU_MK2, virtual_ipu
from repro.models import build_bert, build_nerf, build_opt, build_resnet
from repro.runtime import Executor

FAST = SearchConstraints(
    core_count_samples=4, max_factorizations_per_target=100, max_temporal_combos=16
)


@pytest.fixture(scope="module")
def executor():
    return Executor(IPU_MK2)


@pytest.fixture(scope="module")
def t10(ipu_cost_model_module):
    return T10Compiler(IPU_MK2, cost_model=ipu_cost_model_module, constraints=FAST)


@pytest.fixture(scope="module")
def ipu_cost_model_module():
    from repro.core import CostModel

    return CostModel.fit(IPU_MK2, samples_per_type=24)


class TestBertEndToEnd:
    @pytest.fixture(scope="class")
    def results(self, executor, t10):
        graph = build_bert(1, num_layers=2)
        return {
            "t10": executor.evaluate(t10, graph),
            "roller": executor.evaluate(RollerCompiler(IPU_MK2), graph),
            "popart": executor.evaluate(PopARTCompiler(IPU_MK2), graph),
        }

    def test_everything_runs(self, results):
        assert results["t10"].ok and results["roller"].ok and results["popart"].ok

    def test_t10_fastest(self, results):
        assert results["t10"].latency < results["roller"].latency
        assert results["t10"].latency < results["popart"].latency

    def test_speedup_in_plausible_range(self, results):
        speedup = results["t10"].speedup_over(results["roller"])
        assert 1.1 < speedup < 8.0

    def test_popart_slower_than_roller(self, results):
        assert results["popart"].latency > results["roller"].latency

    def test_comm_fraction_reduced(self, results):
        assert results["t10"].comm_fraction < results["roller"].comm_fraction
        assert results["roller"].comm_fraction > 0.4

    def test_memory_fits(self, results):
        simulation = results["t10"].simulation
        assert simulation.peak_memory_per_core <= IPU_MK2.sram_per_core


class TestNeRF:
    def test_popart_cannot_fit_but_t10_can(self, executor, t10):
        graph = build_nerf(1)
        assert executor.evaluate(t10, graph).ok
        assert not executor.evaluate(PopARTCompiler(IPU_MK2), graph).ok

    def test_t10_beats_roller_substantially(self, executor, t10):
        graph = build_nerf(1)
        t10_result = executor.evaluate(t10, graph)
        roller_result = executor.evaluate(RollerCompiler(IPU_MK2), graph)
        assert t10_result.speedup_over(roller_result) > 1.5


class TestResNetBatchScaling:
    def test_larger_batch_smaller_gain(self, executor, t10):
        """Figure 12/§6.6: T10's advantage shrinks as on-chip memory fills up."""
        small = build_resnet(4)
        large = build_resnet(64)
        speedups = []
        for graph in (small, large):
            t10_result = executor.evaluate(t10, graph)
            roller_result = executor.evaluate(RollerCompiler(IPU_MK2), graph)
            assert t10_result.ok and roller_result.ok
            speedups.append(t10_result.speedup_over(roller_result))
        assert speedups[0] > 1.0
        assert speedups[1] > 0.9
        assert speedups[1] <= speedups[0] * 1.1


class TestVirtualIPU:
    def test_two_chip_device_runs(self, ipu_cost_model_module):
        chip = virtual_ipu(2)
        from repro.core import CostModel

        compiler = T10Compiler(
            chip, cost_model=CostModel.fit(chip, samples_per_type=16), constraints=FAST
        )
        executor = Executor(chip)
        result = executor.evaluate(compiler, build_nerf(1))
        assert result.ok


class TestLLMDecode:
    def test_ipu_t10_beats_a100_at_small_batch(self, executor, t10):
        graph = build_opt(2, size="6.7b", num_layers=1)
        ipu = executor.evaluate(t10, graph)
        gpu = GPURooflineModel().estimate(graph)
        assert ipu.ok
        assert gpu.total_time / ipu.latency > 1.0

    def test_advantage_shrinks_with_batch(self, executor, t10):
        gpu_model = GPURooflineModel()
        ratios = []
        for batch in (2, 128):
            graph = build_opt(batch, size="1.3b", num_layers=1)
            ipu = executor.evaluate(t10, graph)
            assert ipu.ok
            ratios.append(gpu_model.estimate(graph).total_time / ipu.latency)
        assert ratios[1] < ratios[0]
