"""Tests for continuous-batching autoregressive serving (repro.serving.continuous)."""

from __future__ import annotations

import math

import pytest

from repro.core import T10Compiler
from repro.ir import OperatorGraph, elementwise, matmul
from repro.serving import (
    DECODE_OK,
    DECODE_SHED,
    SLO_BEST_EFFORT,
    SLO_INTERACTIVE,
    ContinuousEngine,
    DecodeModel,
    DecodeRequest,
    DynamicBatcher,
    PlanCache,
    StaticEngine,
    TenantSpec,
    WorkerPool,
    decode_workload,
    merge_decode_workloads,
    uniform_workload,
)


def tiny_decode_builder(batch_size: int, *, width: int = 64) -> OperatorGraph:
    """A decode-step-shaped graph scaled by batch size (fast to compile)."""
    graph = OperatorGraph(name=f"tiny-decode-b{batch_size}")
    fc1 = graph.add(matmul("fc1", m=batch_size * 8, k=width, n=width))
    act = graph.add(
        elementwise("act", {"m": batch_size * 8, "n": width}, kind="relu"),
        inputs=[fc1],
    )
    graph.add(matmul("fc2", m=batch_size * 8, k=width, n=32), inputs=[act])
    return graph


@pytest.fixture()
def cache(small_cost_model, fast_constraints):
    """A plan cache compiling with the shared test cost model."""
    return PlanCache(
        compiler_factory=lambda chip, constraints: T10Compiler(
            chip, cost_model=small_cost_model, constraints=constraints
        ),
    )


def make_model(*, max_batch_size: int = 4, prefill_chunk: int = 64) -> DecodeModel:
    return DecodeModel(
        name="tiny",
        decode_builder=tiny_decode_builder,
        max_batch_size=max_batch_size,
        prefill_chunk=prefill_chunk,
    )


def make_engine(cache, small_chip, fast_constraints, **kwargs) -> ContinuousEngine:
    model = kwargs.pop("model", None) or make_model(
        max_batch_size=kwargs.pop("max_batch_size", 4)
    )
    return ContinuousEngine(
        model,
        chip=small_chip,
        constraints=fast_constraints,
        plan_cache=cache,
        **kwargs,
    )


def request(
    request_id: int,
    arrival: float,
    *,
    tokens: int = 4,
    prompt: int = 16,
    slo_class: str = SLO_INTERACTIVE,
    deadline: float | None = None,
) -> DecodeRequest:
    return DecodeRequest(
        request_id=request_id,
        model="tiny",
        arrival_time=arrival,
        prompt_tokens=prompt,
        max_new_tokens=tokens,
        slo_class=slo_class,
        deadline=deadline,
    )


# --------------------------------------------------------------------------- #
# Requests and workload generation
# --------------------------------------------------------------------------- #
class TestDecodeRequest:
    def test_validation(self):
        with pytest.raises(ValueError):
            request(0, -1.0)
        with pytest.raises(ValueError):
            request(0, 0.0, prompt=0)
        with pytest.raises(ValueError):
            request(0, 0.0, tokens=0)
        with pytest.raises(ValueError):
            DecodeRequest(0, "m", 0.0, 1, 1, slo_class="bulk")
        with pytest.raises(ValueError):
            request(0, 5.0, deadline=4.0)

    def test_interactive_flag(self):
        assert request(0, 0.0).interactive
        assert not request(0, 0.0, slo_class=SLO_BEST_EFFORT).interactive

    def test_workload_is_deterministic_and_within_ranges(self):
        first = decode_workload(
            "tiny", num_requests=50, rate=100.0, seed=7, slo_seconds=0.5
        )
        second = decode_workload(
            "tiny", num_requests=50, rate=100.0, seed=7, slo_seconds=0.5
        )
        assert first == second
        assert len(first) == 50
        assert all(16 <= req.prompt_tokens <= 128 for req in first)
        assert all(4 <= req.max_new_tokens <= 48 for req in first)
        arrivals = [req.arrival_time for req in first]
        assert arrivals == sorted(arrivals)

    def test_workload_deadlines_only_on_interactive(self):
        requests = decode_workload(
            "tiny",
            num_requests=60,
            rate=100.0,
            seed=1,
            interactive_fraction=0.5,
            slo_seconds=lambda prompt, output: 0.01 * output,
        )
        classes = {req.slo_class for req in requests}
        assert classes == {SLO_INTERACTIVE, SLO_BEST_EFFORT}
        for req in requests:
            if req.interactive:
                assert req.deadline is not None
                assert req.deadline == pytest.approx(
                    req.arrival_time + 0.01 * req.max_new_tokens
                )
            else:
                assert req.deadline is None

    def test_workload_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            decode_workload("tiny", num_requests=0, rate=1.0)
        with pytest.raises(ValueError):
            decode_workload("tiny", num_requests=1, rate=0.0)
        with pytest.raises(ValueError):
            decode_workload("tiny", num_requests=1, rate=1.0, interactive_fraction=2.0)

    def test_workload_tags_tenant(self):
        requests = decode_workload(
            "tiny", num_requests=5, rate=100.0, seed=0, tenant="acme"
        )
        assert all(req.tenant == "acme" for req in requests)


class TestTenantSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            TenantSpec("")
        with pytest.raises(ValueError):
            TenantSpec("t", fairness_floor=1.5)
        with pytest.raises(ValueError):
            TenantSpec("t", weight=0.0)
        spec = TenantSpec("t", fairness_floor=0.5, weight=2.0)
        assert (spec.name, spec.fairness_floor, spec.weight) == ("t", 0.5, 2.0)


class TestMergeDecodeWorkloads:
    def streams(self):
        return [
            decode_workload(
                "tiny", num_requests=12, rate=200.0, seed=1, tenant="acme"
            ),
            decode_workload(
                "tiny", num_requests=8, rate=150.0, seed=2, tenant="globex"
            ),
        ]

    def test_renumbers_colliding_ids_in_arrival_order(self):
        merged = merge_decode_workloads(*self.streams())
        assert [req.request_id for req in merged] == list(range(20))
        times = [req.arrival_time for req in merged]
        assert times == sorted(times)
        assert {req.tenant for req in merged} == {"acme", "globex"}

    def test_permutation_invariant(self):
        forward = merge_decode_workloads(*self.streams())
        backward = merge_decode_workloads(*reversed(self.streams()))
        assert forward == backward

    def test_rejects_indistinguishable_requests(self):
        stream = decode_workload(
            "tiny", num_requests=3, rate=100.0, seed=1, tenant="acme"
        )
        with pytest.raises(ValueError, match="indistinguishable"):
            merge_decode_workloads(stream, stream)


class TestDecodeModel:
    def test_prefill_iterations(self):
        model = make_model(prefill_chunk=64)
        assert model.prefill_iterations(1) == 1
        assert model.prefill_iterations(64) == 1
        assert model.prefill_iterations(65) == 2
        assert model.total_iterations(request(0, 0.0, tokens=5, prompt=65)) == 6

    def test_validation(self):
        with pytest.raises(ValueError):
            DecodeModel("", tiny_decode_builder)
        with pytest.raises(ValueError):
            DecodeModel("m", tiny_decode_builder, max_batch_size=0)
        with pytest.raises(ValueError):
            DecodeModel("m", tiny_decode_builder, prefill_chunk=0)


# --------------------------------------------------------------------------- #
# Worker-pool iteration costing
# --------------------------------------------------------------------------- #
class TestIterationProfile:
    def test_profile_pays_compile_once(self, cache, small_chip, fast_constraints):
        pool = WorkerPool(small_chip, plan_cache=cache, constraints=fast_constraints)
        graph = tiny_decode_builder(2)
        cold = pool.profile(graph)
        assert cold.ok
        assert cold.cache_outcome == "compile"
        assert cold.compile_seconds > 0
        assert cold.latency > 0
        warm = pool.profile(tiny_decode_builder(2))
        assert warm.cache_outcome == "hit-memory"
        assert warm.compile_seconds == 0.0
        assert warm.latency == cold.latency


# --------------------------------------------------------------------------- #
# Continuous engine
# --------------------------------------------------------------------------- #
class TestContinuousEngine:
    def test_warm_compiles_each_bucket_once(self, cache, small_chip, fast_constraints):
        engine = make_engine(cache, small_chip, fast_constraints, max_batch_size=4)
        engine.warm()
        assert cache.stats.misses == 3  # buckets 1, 2, 4
        engine.warm()
        assert cache.stats.misses == 3
        report = engine.run([request(0, 0.0), request(1, 0.0)])
        assert report.cache.misses == 0

    def test_short_requests_retire_before_long_cobatched_ones(
        self, cache, small_chip, fast_constraints
    ):
        engine = make_engine(cache, small_chip, fast_constraints)
        report = engine.run(
            [request(0, 0.0, tokens=12), request(1, 0.0, tokens=2)]
        )
        long_record, short_record = report.completed
        assert short_record.completion_time < long_record.completion_time
        assert short_record.tokens_generated == 2
        assert long_record.tokens_generated == 12

    def test_admission_at_iteration_boundary(self, cache, small_chip, fast_constraints):
        engine = make_engine(cache, small_chip, fast_constraints)
        unit = engine.iteration_latency(1)
        # The second request arrives mid-generation of the first and joins
        # the running batch at the next boundary instead of waiting for the
        # first to finish.
        late = request(1, arrival=unit * 1.5, tokens=2)
        report = engine.run([request(0, 0.0, tokens=10), late])
        late_record = next(r for r in report.completed if r.request.request_id == 1)
        first_record = next(r for r in report.completed if r.request.request_id == 0)
        assert late_record.admitted_time < first_record.completion_time
        assert late_record.completion_time < first_record.completion_time

    def test_edf_admission_order(self, cache, small_chip, fast_constraints):
        engine = make_engine(
            cache, small_chip, fast_constraints, model=make_model(max_batch_size=1)
        )
        unit = engine.iteration_latency(1)
        # Both queue behind a running request; the later arrival has the
        # tighter deadline and must be admitted first.
        blocker = request(0, 0.0, tokens=6)
        loose = request(1, arrival=unit * 0.1, tokens=1, deadline=unit * 1000)
        tight = request(2, arrival=unit * 0.2, tokens=1, deadline=unit * 900)
        report = engine.run([blocker, loose, tight])
        by_id = {r.request.request_id: r for r in report.completed}
        assert by_id[2].admitted_time < by_id[1].admitted_time

    def test_preemption_of_best_effort(self, cache, small_chip, fast_constraints):
        engine = make_engine(
            cache, small_chip, fast_constraints, model=make_model(max_batch_size=1)
        )
        unit = engine.iteration_latency(1)
        best_effort = request(0, 0.0, tokens=20, slo_class=SLO_BEST_EFFORT)
        interactive = request(1, arrival=unit * 1.5, tokens=2)
        report = engine.run([best_effort, interactive])
        assert report.preemptions == 1
        be_record = next(r for r in report.completed if r.request.request_id == 0)
        it_record = next(r for r in report.completed if r.request.request_id == 1)
        assert be_record.preemptions == 1
        # The interactive request finished first; the preempted best-effort
        # request kept its progress and still generated every token.
        assert it_record.completion_time < be_record.completion_time
        assert be_record.tokens_generated == 20

    def test_load_shedding_of_hopeless_requests(
        self, cache, small_chip, fast_constraints
    ):
        engine = make_engine(cache, small_chip, fast_constraints)
        unit = engine.iteration_latency(1)
        hopeless = request(0, 0.0, tokens=50, deadline=unit * 0.5)
        report = engine.run([hopeless])
        assert report.shed == 1
        record = report.completed[0]
        assert record.status == DECODE_SHED
        assert not record.ok
        assert not record.met_slo
        assert record.tokens_generated == 0
        assert math.isnan(record.time_to_first_token)
        assert report.total_completed == 0

    def test_shedding_can_be_disabled(self, cache, small_chip, fast_constraints):
        engine = make_engine(cache, small_chip, fast_constraints, shed=False)
        unit = engine.iteration_latency(1)
        hopeless = request(0, 0.0, tokens=50, deadline=unit * 0.5)
        report = engine.run([hopeless])
        assert report.shed == 0
        record = report.completed[0]
        assert record.status == DECODE_OK
        assert not record.met_slo  # served, but past its deadline
        assert report.slo_attainment == 0.0

    def test_autoscaling_grows_and_shrinks_with_queue_depth(
        self, cache, small_chip, fast_constraints
    ):
        engine = make_engine(
            cache, small_chip, fast_constraints, num_chips=2, max_batch_size=2
        )
        # A burst far deeper than one replica's batch: the second replica
        # must activate, then deactivate once the backlog drains.
        burst = [request(i, 0.0, tokens=2) for i in range(12)]
        report = engine.run(burst)
        assert report.scale_ups >= 1
        assert report.scale_downs >= 1
        assert report.peak_active_chips == 2
        assert 1.0 < report.mean_active_chips <= 2.0

    def test_min_replicas_pins_the_fleet(self, cache, small_chip, fast_constraints):
        engine = make_engine(
            cache, small_chip, fast_constraints, num_chips=2, min_replicas=2
        )
        report = engine.run([request(0, 0.0)])
        assert report.scale_ups == 0
        assert report.scale_downs == 0
        assert report.mean_active_chips == pytest.approx(2.0)

    def test_determinism(self, cache, small_chip, fast_constraints):
        workload = decode_workload(
            "tiny", num_requests=40, rate=5000.0, seed=3, slo_seconds=0.01
        )
        first = make_engine(cache, small_chip, fast_constraints, num_chips=2).run(
            workload
        )
        second = make_engine(cache, small_chip, fast_constraints, num_chips=2).run(
            workload
        )
        assert first.completed == second.completed
        assert first.iterations == second.iterations
        assert first.makespan == second.makespan

    def test_empty_workload(self, cache, small_chip, fast_constraints):
        report = make_engine(cache, small_chip, fast_constraints).run([])
        assert report.completed == ()
        assert report.makespan == 0.0
        assert report.iterations == 0
        assert report.throughput == 0.0
        assert math.isnan(report.slo_attainment)

    def test_rejects_unknown_model_and_bad_config(
        self, cache, small_chip, fast_constraints
    ):
        engine = make_engine(cache, small_chip, fast_constraints)
        with pytest.raises(ValueError, match="unserved"):
            engine.run(
                [DecodeRequest(0, "other-model", 0.0, 16, 4)]
            )
        with pytest.raises(ValueError, match="jobs"):
            ContinuousEngine(
                make_model(),
                chip=small_chip,
                constraints=fast_constraints,
                plan_cache=cache,
                jobs=2,
            )
        with pytest.raises(ValueError, match="min_replicas"):
            make_engine(cache, small_chip, fast_constraints, min_replicas=5)

    def test_mean_active_chips_bounded_with_shed_leading_request(
        self, cache, small_chip, fast_constraints
    ):
        # Regression: active time used to be divided by the served-request
        # makespan, so a shed request long before the served traffic made
        # mean_active_chips explode past the fleet size (hundreds of chips
        # on a one-chip fleet).
        engine = make_engine(cache, small_chip, fast_constraints)
        unit = engine.iteration_latency(1)
        hopeless = request(0, 0.0, tokens=50, deadline=unit * 0.5)
        late = request(1, arrival=unit * 1000, tokens=2)
        report = engine.run([hopeless, late])
        assert report.shed == 1
        assert report.total_completed == 1
        assert report.active_span >= report.makespan
        assert 0.0 < report.mean_active_chips <= report.num_chips

    def test_report_accounting_is_consistent(self, cache, small_chip, fast_constraints):
        workload = decode_workload(
            "tiny", num_requests=30, rate=5000.0, seed=5, slo_seconds=0.005
        )
        report = make_engine(cache, small_chip, fast_constraints).run(workload)
        assert len(report.completed) == 30
        assert report.total_completed + report.shed == 30
        assert report.total_tokens == sum(
            r.tokens_generated for r in report.ok_requests
        )
        assert report.slo_met <= report.total_completed
        assert report.goodput <= report.throughput
        assert 0.0 <= report.utilization <= 1.0
        assert report.summary()  # renders without raising


# --------------------------------------------------------------------------- #
# Static baseline
# --------------------------------------------------------------------------- #
class TestStaticEngine:
    def test_head_of_line_blocking(self, cache, small_chip, fast_constraints):
        model = make_model(max_batch_size=2)
        engine = StaticEngine(
            model, chip=small_chip, constraints=fast_constraints, plan_cache=cache
        )
        unit = engine.iteration_latency(2)
        long_req = request(0, 0.0, tokens=20)
        short_req = request(1, 0.0, tokens=1)
        late = request(2, arrival=unit * 2, tokens=1)
        report = engine.run([long_req, short_req, late])
        by_id = {r.request.request_id: r for r in report.completed}
        # The late request cannot join the running batch: it waits for the
        # batch's longest member even though a slot freed long before.
        assert by_id[2].admitted_time >= by_id[0].completion_time

    def test_no_slo_machinery(self, cache, small_chip, fast_constraints):
        engine = StaticEngine(
            make_model(), chip=small_chip, constraints=fast_constraints, plan_cache=cache
        )
        unit = engine.iteration_latency(1)
        report = engine.run(
            [request(0, 0.0, tokens=30, deadline=unit * 0.5), request(1, 0.0)]
        )
        assert report.shed == 0
        assert report.preemptions == 0
        assert report.scale_ups == 0
        assert report.total_completed == 2

    def test_same_cache_as_continuous(self, cache, small_chip, fast_constraints):
        """Both engines share per-bucket programs through one plan cache."""
        continuous = make_engine(cache, small_chip, fast_constraints)
        continuous.warm()
        misses = cache.stats.misses
        static = StaticEngine(
            make_model(), chip=small_chip, constraints=fast_constraints, plan_cache=cache
        )
        static.warm()
        assert cache.stats.misses == misses  # every bucket was a hit


# --------------------------------------------------------------------------- #
# Pipeline-sharded decode (num_stages > 1)
# --------------------------------------------------------------------------- #
class TestShardedDecode:
    def sharded_model(self, *, max_batch_size: int = 2) -> DecodeModel:
        return DecodeModel(
            name="tiny",
            decode_builder=tiny_decode_builder,
            max_batch_size=max_batch_size,
            num_stages=2,
        )

    def test_both_engines_run_sharded(self, cache, small_chip, fast_constraints):
        """A num_stages=2 model occupies a two-chip group per replica and the
        chip-seconds/peak accounting scales with the group size."""
        model = self.sharded_model()
        workload = decode_workload(
            "tiny", num_requests=12, rate=5000.0, seed=9, slo_seconds=0.005
        )
        for engine_cls in (ContinuousEngine, StaticEngine):
            report = engine_cls(
                model,
                chip=small_chip,
                num_chips=2,
                constraints=fast_constraints,
                plan_cache=cache,
            ).run(workload)
            assert report.num_stages == 2
            assert report.num_chips == 2
            assert report.total_completed + report.shed == 12
            assert report.peak_active_chips == 2  # one group of two chips
            assert report.busy_chip_seconds > 0
            assert 0.0 <= report.utilization <= 1.0
            assert report.iterations > 0

    def test_sharded_matches_unsharded_token_accounting(
        self, cache, small_chip, fast_constraints
    ):
        """Sharding changes where iterations run, never how many tokens each
        request generates."""
        workload = decode_workload("tiny", num_requests=8, rate=5000.0, seed=4)
        sharded = ContinuousEngine(
            self.sharded_model(),
            chip=small_chip,
            num_chips=2,
            constraints=fast_constraints,
            plan_cache=cache,
        ).run(workload)
        flat = ContinuousEngine(
            make_model(max_batch_size=2),
            chip=small_chip,
            num_chips=1,
            constraints=fast_constraints,
            plan_cache=cache,
        ).run(workload)
        def tokens(report):
            return {r.request.request_id: r.tokens_generated for r in report.ok_requests}

        assert tokens(sharded) == tokens(flat)

    def test_fleet_smaller_than_group_is_rejected(
        self, cache, small_chip, fast_constraints
    ):
        with pytest.raises(ValueError, match="group"):
            ContinuousEngine(
                self.sharded_model(),
                chip=small_chip,
                num_chips=1,
                constraints=fast_constraints,
                plan_cache=cache,
            )


# --------------------------------------------------------------------------- #
# Accounting bugfixes (shed sentinels, migration re-prefill, raw utilization,
# autoscale hysteresis) — regression tests for repro.serving PR 7
# --------------------------------------------------------------------------- #
class TestAccountingFixes:
    def test_shed_records_use_sentinels_not_fabricated_values(
        self, cache, small_chip, fast_constraints
    ):
        """A shed request was never admitted and never placed: its record
        must say so (NaN admission, replica -1) instead of fabricating an
        admitted_time=now and whatever replica index was at hand."""
        engine = make_engine(cache, small_chip, fast_constraints)
        unit = engine.iteration_latency(1)
        report = engine.run([request(0, 0.0, tokens=50, deadline=unit * 0.5)])
        assert report.shed == 1
        record = report.completed[0]
        assert math.isnan(record.admitted_time)
        assert record.replica == -1
        assert record.requeues == 0
        # Served requests still carry real values.
        served = make_engine(cache, small_chip, fast_constraints).run(
            [request(1, 0.0, tokens=2)]
        )
        record = served.completed[0]
        assert record.admitted_time == 0.0
        assert record.replica == 0

    def test_preemption_resume_on_other_replica_charges_reprefill(
        self, cache, small_chip, fast_constraints
    ):
        """KV state lives on the replica that ran the prefill: a preempted
        request resuming on a *different* replica must redo its prefill and
        all generated tokens (counted as a migration), never silently carry
        its progress across chips."""
        model = make_model(max_batch_size=1)
        be0 = request(0, 0.0, tokens=30, slo_class=SLO_BEST_EFFORT)
        unit_engine = make_engine(
            cache, small_chip, fast_constraints, model=model, num_chips=2,
            min_replicas=2,
        )
        unit = unit_engine.iteration_latency(1)
        # int1 occupies replica 1; the long int2 preempts be0 off replica 0;
        # replica 1 frees first, so be0 resumes there — a migration.
        int1 = request(1, arrival=0.5 * unit, tokens=2)
        int2 = request(2, arrival=1.5 * unit, tokens=20)
        workload = [be0, int1, int2]
        migrated = unit_engine.run(workload)
        assert migrated.preemptions >= 1
        assert migrated.migrations >= 1
        be_record = next(
            r for r in migrated.completed if r.request.request_id == 0
        )
        assert be_record.requeues >= 1
        assert be_record.tokens_generated == 30  # all tokens still delivered
        # Same workload on one replica: resume happens on the origin, keeps
        # progress, and therefore takes strictly fewer decode iterations.
        control = make_engine(
            cache, small_chip, fast_constraints, model=make_model(max_batch_size=1)
        ).run(workload)
        assert control.migrations == 0
        assert migrated.iterations > sum(
            model.ideal_iterations(r.prompt_tokens, r.max_new_tokens)
            for r in workload
        )
        assert control.iterations == sum(
            model.ideal_iterations(r.prompt_tokens, r.max_new_tokens)
            for r in workload
        )

    def test_pool_utilization_is_raw_and_bounded(
        self, cache, small_chip, fast_constraints
    ):
        """utilization() reports the raw busy/span ratio: legitimately <= 1
        (+ float eps) after any run, and deliberately unclamped so that
        busy-seconds double-accounting would surface as > 1 instead of being
        silently masked."""
        pool = WorkerPool(
            small_chip, num_chips=2, plan_cache=cache, constraints=fast_constraints
        )
        batcher = DynamicBatcher(max_batch_size=1, batch_window=0.0)
        graph = tiny_decode_builder(1)
        for batch in batcher.batches(
            uniform_workload(["tiny"], num_requests=6, interval=0.0)
        ):
            pool.place(batch, graph)
        assert 0.0 < pool.utilization() <= 1.0 + 1e-9
        # The clamp is really gone: inject double-accounted busy seconds and
        # the ratio must read above 1 rather than saturating at it.
        pool.busy_seconds += pool.makespan * pool.num_chips
        assert pool.utilization() > 1.0

    def test_autoscale_hysteresis_at_scale_up_queue_boundary(
        self, cache, small_chip, fast_constraints
    ):
        """The second replica activates only when the backlog strictly
        exceeds scale_up_queue per active replica, deactivates once it
        drains, and peak_active never exceeds the fleet."""
        def burst(n):
            return [request(i, 0.0, tokens=2) for i in range(n)]

        def engine():
            return make_engine(
                cache, small_chip, fast_constraints,
                model=make_model(max_batch_size=1), num_chips=2, scale_up_queue=3,
            )

        # 1 running + 3 queued == the boundary: no scale-up.
        at_boundary = engine().run(burst(4))
        assert at_boundary.scale_ups == 0
        assert at_boundary.scale_downs == 0
        assert at_boundary.peak_active_chips == 1
        # One more request crosses it: scale up, then back down on drain.
        over_boundary = engine().run(burst(5))
        assert over_boundary.scale_ups == 1
        assert over_boundary.scale_downs == 1
        assert over_boundary.peak_active_chips == 2
        for report in (at_boundary, over_boundary):
            assert report.peak_active_chips <= report.num_chips
