"""Tests for the Pareto-frontier utilities."""

from __future__ import annotations

from dataclasses import dataclass

from hypothesis import given, strategies as st

from repro.core.pareto import ParetoAccumulator, dominates, hypervolume, pareto_front


@dataclass(frozen=True)
class Point:
    memory: float
    time: float


MEM = lambda p: p.memory  # noqa: E731
TIME = lambda p: p.time  # noqa: E731


class TestParetoFront:
    def test_simple_frontier(self):
        points = [Point(1, 10), Point(2, 5), Point(3, 7), Point(4, 1)]
        frontier = pareto_front(points, memory=MEM, time=TIME)
        assert frontier == [Point(1, 10), Point(2, 5), Point(4, 1)]

    def test_empty(self):
        assert pareto_front([], memory=MEM, time=TIME) == []

    def test_single(self):
        assert pareto_front([Point(1, 1)], memory=MEM, time=TIME) == [Point(1, 1)]

    def test_duplicates_memory_keeps_faster(self):
        points = [Point(1, 10), Point(1, 4), Point(2, 8)]
        frontier = pareto_front(points, memory=MEM, time=TIME)
        assert Point(1, 4) in frontier
        assert Point(1, 10) not in frontier

    def test_sorted_by_memory_and_decreasing_time(self):
        points = [Point(m, 100 / m) for m in range(1, 20)]
        frontier = pareto_front(points, memory=MEM, time=TIME)
        memories = [p.memory for p in frontier]
        times = [p.time for p in frontier]
        assert memories == sorted(memories)
        assert times == sorted(times, reverse=True)

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=50), st.integers(min_value=1, max_value=50)
            ),
            min_size=1,
            max_size=40,
        )
    )
    def test_property_no_member_dominated(self, raw):
        points = [Point(m, t) for m, t in raw]
        frontier = pareto_front(points, memory=MEM, time=TIME)
        assert frontier
        for member in frontier:
            assert not any(
                dominates(other, member, memory=MEM, time=TIME)
                for other in points
                if other is not member
            )

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=50), st.integers(min_value=1, max_value=50)
            ),
            min_size=1,
            max_size=40,
        )
    )
    def test_property_every_point_dominated_or_on_front(self, raw):
        points = [Point(m, t) for m, t in raw]
        frontier = pareto_front(points, memory=MEM, time=TIME)
        frontier_keys = {(p.memory, p.time) for p in frontier}
        for point in points:
            covered = (point.memory, point.time) in frontier_keys or any(
                member.memory <= point.memory and member.time <= point.time
                for member in frontier
            )
            assert covered


    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=50), st.integers(min_value=1, max_value=50)
            ),
            min_size=1,
            max_size=40,
        )
    )
    def test_property_idempotent(self, raw):
        """Filtering a frontier again changes nothing: it is a fixed point."""
        points = [Point(m, t) for m, t in raw]
        frontier = pareto_front(points, memory=MEM, time=TIME)
        assert pareto_front(frontier, memory=MEM, time=TIME) == frontier

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=50), st.integers(min_value=1, max_value=50)
            ),
            min_size=1,
            max_size=25,
        ),
        st.randoms(use_true_random=False),
    )
    def test_property_permutation_invariant(self, raw, rng):
        """The frontier depends only on the point set, not the input order.

        (Compared as (memory, time) pairs: items with identical objectives
        are interchangeable, so any of them may represent the pair.)
        """
        points = [Point(m, t) for m, t in raw]
        reference = pareto_front(points, memory=MEM, time=TIME)
        shuffled = list(points)
        rng.shuffle(shuffled)
        permuted = pareto_front(shuffled, memory=MEM, time=TIME)
        assert [(p.memory, p.time) for p in permuted] == [
            (p.memory, p.time) for p in reference
        ]


class TestParetoAccumulator:
    def _accumulate(self, points):
        accumulator = ParetoAccumulator(memory=MEM, time=TIME)
        for point in points:
            accumulator.insert(point)
        return accumulator

    def test_empty(self):
        accumulator = ParetoAccumulator(memory=MEM, time=TIME)
        assert accumulator.items() == []
        assert len(accumulator) == 0
        assert not accumulator.dominates(0.0, 0.0)

    def test_simple_frontier(self):
        points = [Point(1, 10), Point(2, 5), Point(3, 7), Point(4, 1)]
        assert self._accumulate(points).items() == pareto_front(
            points, memory=MEM, time=TIME
        )

    def test_insert_reports_acceptance(self):
        accumulator = ParetoAccumulator(memory=MEM, time=TIME)
        assert accumulator.insert(Point(2, 2))
        assert not accumulator.insert(Point(3, 3))  # dominated
        assert accumulator.insert(Point(1, 5))  # trade-off
        assert accumulator.insert(Point(2, 1))  # replaces equal memory
        assert len(accumulator) == 2

    def test_exact_ties_keep_earliest(self):
        """On an objective tie the first-inserted item survives, matching the
        stable sort of ``pareto_front`` (the streaming search relies on this
        for bit-identical frontiers)."""
        first, second = Point(1, 1), Point(1, 1)
        accumulator = ParetoAccumulator(memory=MEM, time=TIME)
        assert accumulator.insert(first)
        assert not accumulator.insert(second)
        assert accumulator.items()[0] is first

    def test_dominates_is_non_strict(self):
        accumulator = self._accumulate([Point(2, 5)])
        assert accumulator.dominates(2, 5)
        assert accumulator.dominates(3, 6)
        assert accumulator.dominates(2, 6)
        assert not accumulator.dominates(1, 9)
        assert not accumulator.dominates(9, 4)

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=50), st.integers(min_value=1, max_value=50)
            ),
            min_size=0,
            max_size=40,
        )
    )
    def test_property_stream_equals_batch(self, raw):
        """Streaming insertion reproduces ``pareto_front`` exactly."""
        points = [Point(m, t) for m, t in raw]
        streamed = self._accumulate(points).items()
        assert [(p.memory, p.time) for p in streamed] == [
            (p.memory, p.time) for p in pareto_front(points, memory=MEM, time=TIME)
        ]

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=50), st.integers(min_value=1, max_value=50)
            ),
            min_size=1,
            max_size=25,
        ),
        st.randoms(use_true_random=False),
    )
    def test_property_permutation_invariant(self, raw, rng):
        """The accumulated frontier depends only on the point set, not the
        insertion order (compared as objective pairs; items with identical
        objectives are interchangeable)."""
        points = [Point(m, t) for m, t in raw]
        reference = self._accumulate(points).items()
        shuffled = list(points)
        rng.shuffle(shuffled)
        permuted = self._accumulate(shuffled).items()
        assert [(p.memory, p.time) for p in permuted] == [
            (p.memory, p.time) for p in reference
        ]

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=50), st.integers(min_value=1, max_value=50)
            ),
            min_size=1,
            max_size=40,
        )
    )
    def test_property_idempotent(self, raw):
        """Re-inserting a frontier into a fresh accumulator changes nothing."""
        points = [Point(m, t) for m, t in raw]
        frontier = self._accumulate(points).items()
        assert self._accumulate(frontier).items() == frontier

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=50), st.integers(min_value=1, max_value=50)
            ),
            min_size=1,
            max_size=40,
        )
    )
    def test_property_rejected_iff_covered(self, raw):
        """``insert`` returns False exactly when the accumulator already
        ``dominates`` the point (the pruning predicate is consistent)."""
        points = [Point(m, t) for m, t in raw]
        accumulator = ParetoAccumulator(memory=MEM, time=TIME)
        for point in points:
            covered = accumulator.dominates(point.memory, point.time)
            accepted = accumulator.insert(point)
            assert accepted == (not covered)


class TestDominates:
    def test_strict_domination(self):
        assert dominates(Point(1, 1), Point(2, 2), memory=MEM, time=TIME)

    def test_equal_points_do_not_dominate(self):
        assert not dominates(Point(1, 1), Point(1, 1), memory=MEM, time=TIME)

    def test_tradeoff_points_incomparable(self):
        assert not dominates(Point(1, 5), Point(5, 1), memory=MEM, time=TIME)
        assert not dominates(Point(5, 1), Point(1, 5), memory=MEM, time=TIME)


class TestHypervolume:
    def test_richer_frontier_not_worse(self):
        poor = [Point(2, 8)]
        rich = [Point(2, 8), Point(6, 2)]
        reference = (10.0, 10.0)
        assert hypervolume(rich, memory=MEM, time=TIME, reference=reference) >= hypervolume(
            poor, memory=MEM, time=TIME, reference=reference
        )

    def test_points_outside_reference_ignored(self):
        frontier = [Point(20, 20)]
        assert hypervolume(frontier, memory=MEM, time=TIME, reference=(10, 10)) == 0.0
