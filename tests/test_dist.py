"""Tests for the multi-chip sharding subsystem (repro.dist) and its serving path."""

from __future__ import annotations

import os

import pytest

from repro.core import T10Compiler
from repro.dist import (
    PipelineSimulator,
    ShardedCompiler,
    partition_graph,
    stage_subgraph,
)
from repro.hw.interconnect import InterconnectConfig, InterconnectModel
from repro.ir import OperatorGraph, elementwise, matmul
from repro.serving import (
    COMPILE,
    HIT_MEMORY,
    DynamicBatcher,
    PlanCache,
    ServedModel,
    ServingScheduler,
    WorkerPool,
    plan_key,
    uniform_workload,
)


def mlp_graph(num_layers: int = 6, *, width: int = 64, name: str = "mlp") -> OperatorGraph:
    """A chain of small matmul+relu layers that fits the small test chip."""
    graph = OperatorGraph(name=name)
    prev: str | None = None
    for layer in range(num_layers):
        fc = matmul(f"fc{layer}", m=16, k=width, n=width)
        graph.add(fc, [prev] if prev else [])
        act = elementwise(f"act{layer}", {"m": 16, "n": width}, kind="relu")
        graph.add(act, [fc.name])
        prev = act.name
    return graph


def heavy_chain(num_layers: int = 8, *, width: int = 1024) -> OperatorGraph:
    """A matmul chain whose weights exceed the small chip's SRAM unsharded."""
    graph = OperatorGraph(name=f"heavy{num_layers}")
    prev: str | None = None
    for layer in range(num_layers):
        op = matmul(f"fc{layer}", m=64, k=width, n=width)
        graph.add(op, [prev] if prev else [])
        prev = op.name
    return graph


#: Like tests/conftest.py's TEST_JOBS: CI's multi-chip leg sets this to 2 so
#: stage compiles exercise the parallel engine's worker-pool path.
TEST_JOBS = int(os.environ.get("REPRO_TEST_JOBS", "1"))


@pytest.fixture()
def sharded_compiler(small_chip, small_cost_model, fast_constraints):
    with ShardedCompiler(
        small_chip,
        cost_model=small_cost_model,
        constraints=fast_constraints,
        jobs=TEST_JOBS,
    ) as compiler:
        yield compiler


# --------------------------------------------------------------------------- #
# Stage partitioner
# --------------------------------------------------------------------------- #
class TestPartition:
    def test_rejects_bad_stage_counts(self, small_chip, small_cost_model):
        graph = mlp_graph(2)
        with pytest.raises(ValueError):
            partition_graph(graph, 0, cost_model=small_cost_model, chip=small_chip)
        with pytest.raises(ValueError):
            partition_graph(
                graph, len(graph) + 1, cost_model=small_cost_model, chip=small_chip
            )

    def test_rejects_empty_graph(self, small_chip, small_cost_model):
        with pytest.raises(ValueError):
            partition_graph(
                OperatorGraph(name="empty"), 1, cost_model=small_cost_model, chip=small_chip
            )

    def test_slices_cover_topo_order(self, small_chip, small_cost_model):
        graph = mlp_graph(5)
        partition = partition_graph(graph, 3, cost_model=small_cost_model, chip=small_chip)
        assert partition.slices[0].start == 0
        assert partition.slices[-1].stop == len(graph)
        for earlier, later in zip(partition.slices, partition.slices[1:]):
            assert earlier.stop == later.start
        assert all(stage.num_ops >= 1 for stage in partition.slices)
        assert len(partition.est_stage_times) == 3
        assert len(partition.est_transfer_times) == 2

    def test_partition_is_deterministic(self, small_chip, small_cost_model):
        graph = mlp_graph(6)
        first = partition_graph(graph, 4, cost_model=small_cost_model, chip=small_chip)
        second = partition_graph(graph, 4, cost_model=small_cost_model, chip=small_chip)
        assert first == second

    def test_balances_identical_layers(self, small_chip, small_cost_model):
        graph = heavy_chain(8)
        partition = partition_graph(graph, 2, cost_model=small_cost_model, chip=small_chip)
        # Eight identical operators split 4/4: anything else has a worse
        # bottleneck.
        assert [s.num_ops for s in partition.slices] == [4, 4]

    def test_transfer_bytes_match_boundary_activations(self, small_chip, small_cost_model):
        graph = heavy_chain(4)
        partition = partition_graph(graph, 2, cost_model=small_cost_model, chip=small_chip)
        boundary_op = graph.operators[partition.slices[0].stop - 1]
        assert partition.transfer_bytes == (boundary_op.output_bytes,)

    def test_fan_out_producer_ships_one_copy(self, small_chip, small_cost_model):
        # One producer feeding several downstream consumers crosses each
        # boundary once — not once per edge (regression: per-edge counting
        # quadrupled the priced transfer after fan-out ops).
        graph = OperatorGraph(name="fanout")
        src = matmul("src", m=16, k=64, n=64)
        graph.add(src)
        for i in range(3):
            graph.add(
                elementwise(f"sink{i}", {"m": 16, "n": 64}, kind="relu"), [src.name]
            )
        partition = partition_graph(graph, 2, cost_model=small_cost_model, chip=small_chip)
        assert partition.slices[0].stop >= 1
        # Whatever the cut, only one copy of src's output crosses it.
        assert partition.transfer_bytes[0] == src.output_bytes

    def test_bottleneck_below_serial_sum(self, small_chip, small_cost_model):
        graph = heavy_chain(8)
        one = partition_graph(graph, 1, cost_model=small_cost_model, chip=small_chip)
        two = partition_graph(graph, 2, cost_model=small_cost_model, chip=small_chip)
        assert two.est_bottleneck < one.est_bottleneck

    def test_memory_feasibility_flag(self, small_chip, small_cost_model):
        # 10 x 2 MiB of weights exceed the 16 MiB small chip unsharded but
        # fit once split in two.
        graph = heavy_chain(10)
        one = partition_graph(graph, 1, cost_model=small_cost_model, chip=small_chip)
        two = partition_graph(graph, 2, cost_model=small_cost_model, chip=small_chip)
        assert not one.memory_feasible
        assert two.memory_feasible

    def test_stage_subgraph_keeps_intra_stage_edges_only(
        self, small_chip, small_cost_model
    ):
        graph = mlp_graph(4)
        partition = partition_graph(graph, 2, cost_model=small_cost_model, chip=small_chip)
        sub = stage_subgraph(graph, partition.slices[1], 2)
        assert len(sub) == partition.slices[1].num_ops
        member_names = set(partition.stage_ops(1))
        for producer, consumer in sub.edges():
            assert producer.name in member_names
            assert consumer.name in member_names
        # The first op of the stage lost its cross-boundary producer edge.
        first_op = graph.operators[partition.slices[1].start]
        assert sub.predecessors(first_op.name) == []


# --------------------------------------------------------------------------- #
# Pipeline simulator
# --------------------------------------------------------------------------- #
class TestPipelineSimulator:
    def test_validation(self):
        with pytest.raises(ValueError):
            PipelineSimulator([])
        with pytest.raises(ValueError):
            PipelineSimulator([1.0], [0.1])  # too many transfers
        with pytest.raises(ValueError):
            PipelineSimulator([1.0, -1.0], [0.1])
        with pytest.raises(ValueError):
            PipelineSimulator([1.0], []).run(0)

    def test_single_stage_is_sequential(self):
        result = PipelineSimulator([2.0]).run(5)
        assert result.total_latency == pytest.approx(10.0)
        assert result.fill_time == pytest.approx(2.0)
        assert result.drain_time == 0.0
        assert result.bottleneck == pytest.approx(2.0)

    def test_fill_then_steady_state(self):
        # Two balanced stages with a free link: fill 2s, then one micro-batch
        # per second.
        result = PipelineSimulator([1.0, 1.0], [0.0]).run(4)
        assert result.fill_time == pytest.approx(2.0)
        assert result.total_latency == pytest.approx(2.0 + 3 * 1.0)
        assert result.steady_period == pytest.approx(1.0)

    def test_transfer_joins_fill_and_bottleneck(self):
        result = PipelineSimulator([1.0, 1.0], [0.5]).run(1)
        assert result.total_latency == pytest.approx(2.5)
        result = PipelineSimulator([1.0, 1.0], [0.5]).run(3)
        # Stage 0 + its outgoing transfer is the 1.5 s bottleneck.
        assert result.bottleneck == pytest.approx(1.5)
        assert result.total_latency == pytest.approx(2.5 + 2 * 1.5)

    def test_bottleneck_stage_dominates(self):
        slow_mid = PipelineSimulator([0.1, 2.0, 0.1], [0.0, 0.0]).run(10)
        assert slow_mid.steady_period == pytest.approx(2.0)
        assert slow_mid.stage_utilization[1] > slow_mid.stage_utilization[0]

    def test_throughput_improves_with_balanced_stages(self):
        serial = PipelineSimulator([4.0]).run(8)
        split = PipelineSimulator([2.0, 2.0], [0.0]).run(8)
        quarters = PipelineSimulator([1.0] * 4, [0.0] * 3).run(8)
        assert serial.throughput() < split.throughput() < quarters.throughput()

    def test_utilization_bounded(self):
        result = PipelineSimulator([1.0, 3.0], [0.2]).run(6)
        assert all(0.0 < u <= 1.0 for u in result.stage_utilization)


# --------------------------------------------------------------------------- #
# Sharded compiler
# --------------------------------------------------------------------------- #
class TestShardedCompiler:
    def test_compiles_every_stage(self, sharded_compiler):
        graph = mlp_graph(4)
        model = sharded_compiler.compile(graph, 2)
        assert model.ok
        assert len(model.stages) == 2
        assert sum(stage.num_ops for stage in model.stages) == len(graph)
        assert all(stage.latency > 0 for stage in model.stages)
        assert model.latency == pytest.approx(
            sum(model.stage_latencies) + sum(model.transfer_times)
        )
        assert "across 2 chip(s)" in model.summary()

    def test_stage_programs_cache_independently(self, sharded_compiler):
        graph = mlp_graph(4)
        first = sharded_compiler.compile(graph, 2)
        assert [stage.cache_outcome for stage in first.stages] == [COMPILE, COMPILE]
        second = sharded_compiler.compile(graph, 2)
        assert [stage.cache_outcome for stage in second.stages] == [
            HIT_MEMORY,
            HIT_MEMORY,
        ]
        assert second.compiled_stages == 0

    def test_scope_key_disambiguates_stage_plans(
        self, small_chip, small_cost_model, fast_constraints
    ):
        graph = mlp_graph(2)
        partition = partition_graph(
            graph, 2, cost_model=small_cost_model, chip=small_chip
        )
        scope = partition.slices[0].scope(2)
        base = plan_key(graph, small_chip, fast_constraints)
        scoped = plan_key(graph, small_chip, fast_constraints, scope=scope)
        assert base != scoped
        assert scoped.startswith(base)
        # Scopes become on-disk cache filenames; keep them filename-safe.
        assert all(c.isalnum() or c in ".-" for c in scope), scope

    def test_plans_are_reproducible_across_compilers(
        self, small_chip, small_cost_model, fast_constraints
    ):
        graph = mlp_graph(3)
        first = ShardedCompiler(
            small_chip, cost_model=small_cost_model, constraints=fast_constraints
        ).compile(graph, 2)
        second = ShardedCompiler(
            small_chip, cost_model=small_cost_model, constraints=fast_constraints
        ).compile(graph, 2)
        assert first.plans_equal(second)

    def test_oom_model_rescued_by_sharding(self, sharded_compiler, small_cost_model):
        graph = heavy_chain(8)
        single = sharded_compiler.compile(graph, 1)
        assert single.status == "oom"
        assert single.failed_stage == 0
        assert "stage 1/1" in single.error
        sharded = sharded_compiler.compile(graph, 2)
        assert sharded.ok
        assert sharded.pipeline(4).total_latency > 0

    def test_too_many_stages_is_invalid(self, sharded_compiler):
        graph = mlp_graph(1)  # 2 operators
        model = sharded_compiler.compile(graph, 3)
        assert model.status == "invalid"
        assert not model.ok
        with pytest.raises(RuntimeError):
            model.simulator()

    def test_custom_interconnect_prices_transfers(
        self, small_chip, small_cost_model, fast_constraints
    ):
        graph = heavy_chain(4)
        slow_link = ShardedCompiler(
            small_chip,
            cost_model=small_cost_model,
            constraints=fast_constraints,
            interconnect=InterconnectModel(InterconnectConfig(bandwidth=1e6)),
        ).compile(graph, 2)
        fast_link = ShardedCompiler(
            small_chip,
            cost_model=small_cost_model,
            constraints=fast_constraints,
            interconnect=InterconnectModel(InterconnectConfig(bandwidth=1e12)),
        ).compile(graph, 2)
        assert slow_link.transfer_times[0] > fast_link.transfer_times[0]
        assert slow_link.latency > fast_link.latency


# --------------------------------------------------------------------------- #
# Serving integration
# --------------------------------------------------------------------------- #
@pytest.fixture()
def dist_cache(small_cost_model):
    """Plan cache whose compilers use the shared small-chip cost model."""
    cache = PlanCache(
        compiler_factory=lambda chip, constraints: T10Compiler(
            chip, cost_model=small_cost_model, constraints=constraints, jobs=TEST_JOBS
        )
    )
    yield cache
    cache.close()


class TestShardedServing:
    def test_pool_places_sharded_batches_on_chip_groups(
        self, small_chip, fast_constraints, dist_cache
    ):
        pool = WorkerPool(
            small_chip, num_chips=2, plan_cache=dist_cache, constraints=fast_constraints
        )
        graph = mlp_graph(4)
        batcher = DynamicBatcher(max_batch_size=1, batch_window=0.0)
        batches = list(
            batcher.batches(uniform_workload(["mlp"], num_requests=3, interval=0.0))
        )
        executions = [pool.place(b, graph, num_stages=2) for b in batches]
        for execution in executions:
            assert execution.ok
            assert execution.workers == (0, 1)
        # The whole group is held: batches on the same group never overlap.
        for earlier, later in zip(executions, executions[1:]):
            assert later.start_time >= earlier.completion_time
        assert executions[0].cache_outcome == COMPILE
        assert executions[0].compile_penalty > 0
        assert executions[1].cache_outcome == HIT_MEMORY
        assert executions[1].compile_penalty == 0.0

    def test_sharded_outcome_reports_disk_hits(
        self, small_chip, small_cost_model, fast_constraints, tmp_path
    ):
        from repro.serving import HIT_DISK

        def make_pool():
            cache = PlanCache(
                tmp_path / "plans",
                compiler_factory=lambda chip, constraints: T10Compiler(
                    chip, cost_model=small_cost_model, constraints=constraints
                ),
            )
            return WorkerPool(
                small_chip, num_chips=2, plan_cache=cache, constraints=fast_constraints
            )

        graph = mlp_graph(4)
        batcher = DynamicBatcher(max_batch_size=1, batch_window=0.0)
        batch, = batcher.batches(uniform_workload(["mlp"], num_requests=1, interval=0.0))
        cold = make_pool().place(batch, graph, num_stages=2)
        assert cold.cache_outcome == COMPILE
        # A fresh pool over the same cache dir restores every stage from
        # disk: the batch outcome must say so, not claim a memory hit.
        warm = make_pool().place(batch, graph, num_stages=2)
        assert warm.cache_outcome == HIT_DISK
        assert warm.compile_penalty == 0.0

    def test_warm_sharded_compiles_concurrently(
        self, small_chip, fast_constraints, dist_cache
    ):
        pool = WorkerPool(
            small_chip, num_chips=2, plan_cache=dist_cache, constraints=fast_constraints
        )
        models = pool.warm_sharded(
            [(mlp_graph(4), 2), (heavy_chain(8), 2)], max_workers=2
        )
        assert [model.ok for model in models] == [True, True]
        assert pool.warm_sharded([]) == []
        # Warmed models serve without further compiles.
        status, _, latency = pool.measure_sharded(heavy_chain(8), 2)
        assert status == "ok" and latency > 0

    def test_pool_rejects_oversized_groups(
        self, small_chip, fast_constraints, dist_cache
    ):
        pool = WorkerPool(
            small_chip, num_chips=2, plan_cache=dist_cache, constraints=fast_constraints
        )
        with pytest.raises(ValueError):
            pool.measure_sharded(mlp_graph(4), 3)

    def test_scheduler_serves_sharded_model_that_ooms_unsharded(
        self, small_chip, fast_constraints, dist_cache
    ):
        scheduler = ServingScheduler(
            [
                ServedModel(
                    "heavy",
                    lambda batch: heavy_chain(8),
                    max_batch_size=1,
                    num_stages=2,
                )
            ],
            chip=small_chip,
            num_chips=2,
            batch_window=0.0,
            constraints=fast_constraints,
            plan_cache=dist_cache,
        )
        scheduler.warm()
        # The unsharded graph would OOM; sharded it has a real latency.
        unit = scheduler.batch_latency("heavy", 1)
        assert unit > 0
        report = scheduler.serve(
            uniform_workload(["heavy"], num_requests=6, interval=unit)
        )
        assert report.total_completed == 6
        assert report.recompilations == 0
        assert report.overall_throughput > 0

    def test_scheduler_rejects_model_larger_than_fleet(
        self, small_chip, fast_constraints
    ):
        with pytest.raises(ValueError, match="group of 4 chips"):
            ServingScheduler(
                [ServedModel("mlp", lambda batch: mlp_graph(2), num_stages=4)],
                chip=small_chip,
                num_chips=2,
                constraints=fast_constraints,
            )

    def test_mixed_fleet_serves_sharded_and_unsharded(
        self, small_chip, fast_constraints, dist_cache
    ):
        scheduler = ServingScheduler(
            [
                ServedModel(
                    "mlp",
                    lambda batch: mlp_graph(2, name=f"mlp-b{batch}"),
                    max_batch_size=2,
                ),
                ServedModel(
                    "heavy",
                    lambda batch: heavy_chain(8),
                    max_batch_size=1,
                    num_stages=2,
                ),
            ],
            chip=small_chip,
            num_chips=3,
            batch_window=0.0,
            constraints=fast_constraints,
            plan_cache=dist_cache,
        )
        scheduler.warm()
        requests = uniform_workload(["mlp", "heavy"], num_requests=8, interval=1e-5)
        report = scheduler.serve(requests)
        assert report.total_completed == 8
        heavy = [r for r in report.ok_requests if r.request.model == "heavy"]
        assert heavy and all(record.ok for record in heavy)
