"""Tests for the fitted cost model (kernel and communication models)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cost_model import (
    DEFAULT_OP_TYPES,
    CommModel,
    CostModel,
    LinearKernelModel,
    fit_comm_model,
    profile_op_type,
)
from repro.hw.simulator import ChipSimulator


class TestProfiling:
    def test_generates_requested_samples(self, small_chip):
        simulator = ChipSimulator(small_chip)
        rng = np.random.default_rng(0)
        samples = profile_op_type(simulator, "matmul", 10, rng)
        assert len(samples) == 10
        assert all(s.measured_time > 0 for s in samples)

    def test_unknown_op_type_returns_empty(self, small_chip):
        simulator = ChipSimulator(small_chip)
        rng = np.random.default_rng(0)
        assert profile_op_type(simulator, "fft", 5, rng) == []


class TestKernelModel:
    def test_fit_requires_samples(self):
        with pytest.raises(ValueError):
            LinearKernelModel.fit("matmul", [])

    def test_prediction_positive(self, small_cost_model):
        model = small_cost_model.kernel_models["matmul"]
        assert model.predict(0.0, 0.0) > 0
        assert model.predict(1e6, 1e5) > 0

    def test_matmul_accuracy_high(self, small_cost_model):
        metrics = small_cost_model.kernel_models["matmul"].accuracy()
        assert metrics["r2"] > 0.95
        assert metrics["mape"] < 0.15

    def test_conv_less_accurate_than_matmul(self, small_cost_model):
        """The vendor black-box factor makes conv the least predictable type (Fig. 8)."""
        conv = small_cost_model.kernel_models["conv2d"].accuracy()
        matmul_metrics = small_cost_model.kernel_models["matmul"].accuracy()
        assert conv["mape"] > matmul_metrics["mape"]

    def test_elementwise_nearly_perfect(self, small_cost_model):
        metrics = small_cost_model.kernel_models["elementwise_add"].accuracy()
        assert metrics["mape"] < 0.05


class TestCommModel:
    def test_linear_in_bytes(self, small_chip):
        comm = fit_comm_model(ChipSimulator(small_chip))
        assert comm.predict(2 * 10**5) > comm.predict(10**5)

    def test_matches_simulator_closely(self, small_chip):
        simulator = ChipSimulator(small_chip)
        comm = fit_comm_model(simulator)
        for nbytes in (512, 8192, 131072):
            assert comm.predict(nbytes) == pytest.approx(
                simulator.shift_time_per_step(nbytes), rel=0.05
            )

    def test_nonnegative(self):
        assert CommModel(latency=-1.0, per_byte=0.0).predict(0) == 0.0


class TestCostModel:
    def test_fit_covers_default_types(self, small_cost_model):
        for op_type in DEFAULT_OP_TYPES:
            assert small_cost_model.has_model(op_type)

    def test_elementwise_variants_share_model(self, small_cost_model):
        assert small_cost_model.has_model("elementwise_relu")
        time = small_cost_model.compute_time("elementwise_relu", {"r": 8, "c": 8}, 64, 128)
        assert time > 0

    def test_unknown_type_uses_fallback(self, small_cost_model):
        assert not small_cost_model.has_model("fft")
        assert small_cost_model.compute_time("fft", {"n": 64}, 1e5, 1024) > 0

    def test_custom_cost_function(self, small_cost_model):
        small_cost_model.register_custom("mykernel", lambda shape, flops, nbytes: 42.0)
        assert small_cost_model.has_model("mykernel")
        assert small_cost_model.compute_time("mykernel", {}, 1.0, 1.0) == 42.0

    def test_shift_and_setup_consistent(self, small_cost_model):
        assert small_cost_model.shift_time(1024) == small_cost_model.setup_time(1024)

    def test_accuracy_report_structure(self, small_cost_model):
        report = small_cost_model.accuracy_report()
        assert "matmul" in report
        assert set(report["matmul"]) == {"mape", "r2", "num_samples"}

    def test_deterministic_fit(self, small_chip):
        a = CostModel.fit(small_chip, op_types=("matmul",), samples_per_type=16, seed=3)
        b = CostModel.fit(small_chip, op_types=("matmul",), samples_per_type=16, seed=3)
        np.testing.assert_allclose(
            a.kernel_models["matmul"].coefficients, b.kernel_models["matmul"].coefficients
        )

    def test_prediction_tracks_simulator(self, small_chip, small_cost_model):
        """Cost-model predictions should track ground truth across task sizes."""
        simulator = ChipSimulator(small_chip)
        shape_small = {"m": 16, "k": 32, "n": 16}
        shape_large = {"m": 128, "k": 128, "n": 128}
        for shape in (shape_small, shape_large):
            flops = 2 * shape["m"] * shape["k"] * shape["n"]
            nbytes = 2 * (
                shape["m"] * shape["k"] + shape["k"] * shape["n"] + shape["m"] * shape["n"]
            )
            measured = simulator.compute_task_time("matmul", shape, flops, nbytes)
            predicted = small_cost_model.compute_time("matmul", shape, flops, nbytes)
            assert predicted == pytest.approx(measured, rel=0.5)
