"""Tests for sub-tensor placement and rotation invariants (paper §4.4)."""

from __future__ import annotations


from repro.core.placement import PlacementPlan
from repro.core.plan import build_plan
from repro.ir import matmul


def make_plan(chip, cost_model, *, m=4, k=6, n=4, fop=None, temporal=None):
    expr = matmul("mm", m=m, k=k, n=n).expr
    fop = fop or {"m": 2, "k": 1, "n": 2}
    temporal = temporal or {"A": 2, "B": 2, "C": 1}
    plan = build_plan(expr, chip, cost_model, fop, temporal)
    assert plan is not None
    return expr, plan


class TestPlacementConstruction:
    def test_core_grid_matches_fop(self, tiny_chip, tiny_cost_model):
        expr, plan = make_plan(tiny_chip, tiny_cost_model)
        placement = PlacementPlan.build(expr, plan)
        assert placement.num_cores == plan.cores_used

    def test_every_tensor_placed(self, tiny_chip, tiny_cost_model):
        expr, plan = make_plan(tiny_chip, tiny_cost_model)
        placement = PlacementPlan.build(expr, plan)
        assert set(placement.tensors) == {"A", "B", "C"}

    def test_partitions_at_returns_all_tensors(self, tiny_chip, tiny_cost_model):
        expr, plan = make_plan(tiny_chip, tiny_cost_model)
        placement = PlacementPlan.build(expr, plan)
        held = placement.partitions_at(0)
        assert set(held) == {"A", "B", "C"}


class TestRotationInvariants:
    def test_ring_coverage(self, tiny_chip, tiny_cost_model):
        expr, plan = make_plan(tiny_chip, tiny_cost_model)
        placement = PlacementPlan.build(expr, plan)
        assert placement.verify_ring_coverage()

    def test_replica_consistency(self, tiny_chip, tiny_cost_model):
        expr, plan = make_plan(tiny_chip, tiny_cost_model)
        placement = PlacementPlan.build(expr, plan)
        assert placement.verify_replica_consistency()

    def test_verify_combined(self, tiny_chip, tiny_cost_model):
        expr, plan = make_plan(tiny_chip, tiny_cost_model)
        assert PlacementPlan.build(expr, plan).verify()

    def test_rotation_returns_to_start(self, tiny_chip, tiny_cost_model):
        expr, plan = make_plan(tiny_chip, tiny_cost_model)
        placement = PlacementPlan.build(expr, plan)
        initial = [placement.partitions_at(i) for i in range(placement.num_cores)]
        ring = max(cfg.temporal_factor for cfg in plan.rtensors.values())
        for _ in range(ring):
            placement.step()
        final = [placement.partitions_at(i) for i in range(placement.num_cores)]
        assert final == initial

    def test_each_step_changes_rotated_tensor(self, tiny_chip, tiny_cost_model):
        expr, plan = make_plan(tiny_chip, tiny_cost_model)
        placement = PlacementPlan.build(expr, plan)
        rotated = [name for name, cfg in plan.rtensors.items() if cfg.is_rotated]
        before = placement.partitions_at(0)
        placement.step()
        after = placement.partitions_at(0)
        for name in rotated:
            assert before[name] != after[name]

    def test_unrotated_tensor_stays_put(self, tiny_chip, tiny_cost_model):
        expr, plan = make_plan(tiny_chip, tiny_cost_model)
        placement = PlacementPlan.build(expr, plan)
        before = placement.partitions_at(0)["C"]
        placement.step()
        assert placement.partitions_at(0)["C"] == before


class TestReplicatedPlacement:
    def test_fully_replicated_plan(self, tiny_chip, tiny_cost_model):
        expr, plan = make_plan(
            tiny_chip,
            tiny_cost_model,
            fop={"m": 4, "k": 1, "n": 1},
            temporal={"A": 1, "B": 1, "C": 1},
        )
        placement = PlacementPlan.build(expr, plan)
        assert placement.verify()
        # With no rotation a step is a no-op.
        before = [placement.partitions_at(i) for i in range(placement.num_cores)]
        placement.step()
        after = [placement.partitions_at(i) for i in range(placement.num_cores)]
        assert before == after
