"""Tests for device-program steps and bookkeeping."""

from __future__ import annotations

import pytest

from repro.hw.program import (
    AllToAllStep,
    ComputeStep,
    DeviceProgram,
    HBMTransferStep,
    LoadStoreStep,
    SetupStep,
    ShiftStep,
    SyncStep,
)


def make_compute(name="op", count=1):
    return ComputeStep(
        op_name=name,
        op_type="matmul",
        subtask_shape={"m": 4, "k": 4, "n": 4},
        flops=128,
        bytes_accessed=96,
        cores_used=4,
        count=count,
    )


class TestStepValidation:
    def test_compute_rejects_zero_count(self):
        with pytest.raises(ValueError):
            make_compute(count=0)

    def test_compute_rejects_zero_cores(self):
        with pytest.raises(ValueError):
            ComputeStep("op", "matmul", {"m": 1}, 1, 1, cores_used=0)

    def test_shift_rejects_negative_bytes(self):
        with pytest.raises(ValueError):
            ShiftStep("op", "A", bytes_per_core=-1, cores_used=2)

    def test_shift_rejects_low_contention(self):
        with pytest.raises(ValueError):
            ShiftStep("op", "A", bytes_per_core=8, cores_used=2, contention=0.5)

    def test_loadstore_rejects_low_fan_in(self):
        with pytest.raises(ValueError):
            LoadStoreStep("op", bytes_per_core=8, cores_used=2, fan_in=0.9)

    def test_alltoall_rejects_negative(self):
        with pytest.raises(ValueError):
            AllToAllStep("op", total_bytes=-1, cores_used=2)

    def test_hbm_rejects_bad_direction(self):
        with pytest.raises(ValueError):
            HBMTransferStep("op", total_bytes=10, direction="sideways")

    def test_setup_rejects_negative(self):
        with pytest.raises(ValueError):
            SetupStep("op", bytes_per_core=-1, cores_used=2)


class TestDeviceProgram:
    def test_add_and_len(self):
        program = DeviceProgram(name="p")
        program.add(make_compute())
        program.add(SyncStep(op_name="op"))
        assert len(program) == 2

    def test_extend(self):
        program = DeviceProgram(name="p")
        program.extend([make_compute("a"), make_compute("b")])
        assert program.op_names == ["a", "b"]

    def test_record_op_memory_keeps_max(self):
        program = DeviceProgram(name="p")
        program.record_op_memory("a", 100)
        program.record_op_memory("a", 50)
        assert program.op_memory_per_core["a"] == 100

    def test_peak_memory(self):
        program = DeviceProgram(name="p")
        program.reserved_per_core = 10
        program.idle_memory_per_core = 20
        program.record_op_memory("a", 100)
        program.record_op_memory("b", 60)
        assert program.peak_memory_per_core == 10 + 20 + 100

    def test_peak_memory_empty(self):
        program = DeviceProgram(name="p")
        assert program.peak_memory_per_core == 0

    def test_steps_for(self):
        program = DeviceProgram(name="p")
        program.add(make_compute("a"))
        program.add(make_compute("b"))
        program.add(ShiftStep("a", "X", bytes_per_core=4, cores_used=2))
        assert len(list(program.steps_for("a"))) == 2
