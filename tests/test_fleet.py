"""Tests for the multi-model, multi-tenant fleet engine (repro.serving.fleet)."""

from __future__ import annotations

import pytest

from repro.core import T10Compiler
from repro.hw.spec import ChipSpec, KiB
from repro.ir import OperatorGraph, elementwise, matmul
from repro.serving import (
    SLO_BEST_EFFORT,
    SLO_INTERACTIVE,
    CostAwareRouter,
    DecodeModel,
    DecodeRequest,
    FleetEngine,
    PlanCache,
    Router,
    StaticPartitionRouter,
    TenantSpec,
    decode_workload,
    merge_decode_workloads,
)


def tiny_builder(name: str, width: int):
    def build(batch_size: int) -> OperatorGraph:
        graph = OperatorGraph(name=f"{name}-b{batch_size}")
        fc1 = graph.add(matmul("fc1", m=batch_size * 8, k=width, n=width))
        act = graph.add(
            elementwise("act", {"m": batch_size * 8, "n": width}, kind="relu"),
            inputs=[fc1],
        )
        graph.add(matmul("fc2", m=batch_size * 8, k=width, n=32), inputs=[act])
        return graph

    return build


def make_model(name: str = "alpha", *, width: int = 64, max_batch_size: int = 2) -> DecodeModel:
    return DecodeModel(
        name=name,
        decode_builder=tiny_builder(name, width),
        max_batch_size=max_batch_size,
        prefill_chunk=64,
    )


@pytest.fixture()
def cache(small_cost_model, fast_constraints):
    return PlanCache(
        compiler_factory=lambda chip, constraints: T10Compiler(
            chip, cost_model=small_cost_model, constraints=constraints
        ),
    )


@pytest.fixture()
def fat_chip() -> ChipSpec:
    """A second hardware class: fewer, beefier cores than the test chip."""
    return ChipSpec(
        name="fat-chip",
        num_cores=32,
        sram_per_core=512 * KiB,
        core_flops=400e9,
        link_bandwidth=8e9,
        link_latency=0.2e-6,
        offchip_bandwidth=16e9,
    )


def make_engine(cache, small_chip, fast_constraints, **kwargs) -> FleetEngine:
    deployments = kwargs.pop("deployments", None) or [make_model()]
    return FleetEngine(
        deployments,
        chip=small_chip,
        constraints=fast_constraints,
        plan_cache=cache,
        **kwargs,
    )


def request(
    request_id: int,
    arrival: float,
    *,
    model: str = "alpha",
    tokens: int = 4,
    prompt: int = 16,
    slo_class: str = SLO_INTERACTIVE,
    deadline: float | None = None,
    tenant: str = "",
) -> DecodeRequest:
    return DecodeRequest(
        request_id=request_id,
        model=model,
        arrival_time=arrival,
        prompt_tokens=prompt,
        max_new_tokens=tokens,
        slo_class=slo_class,
        deadline=deadline,
        tenant=tenant,
    )


# --------------------------------------------------------------------------- #
# Construction and validation
# --------------------------------------------------------------------------- #
class TestFleetValidation:
    def test_needs_deployments(self, cache, small_chip, fast_constraints):
        with pytest.raises(ValueError, match="at least one deployment"):
            FleetEngine(
                [], chip=small_chip, constraints=fast_constraints, plan_cache=cache
            )

    def test_duplicate_deployment_names(self, cache, small_chip, fast_constraints):
        with pytest.raises(ValueError, match="duplicate deployment names"):
            make_engine(
                cache,
                small_chip,
                fast_constraints,
                deployments=[make_model("a"), make_model("a")],
            )

    def test_mixed_num_stages_rejected(self, cache, small_chip, fast_constraints):
        flat = make_model("flat")
        sharded = DecodeModel(
            name="sharded",
            decode_builder=tiny_builder("sharded", 64),
            max_batch_size=2,
            num_stages=2,
        )
        with pytest.raises(ValueError, match="share one num_stages"):
            make_engine(
                cache, small_chip, fast_constraints, deployments=[flat, sharded]
            )

    def test_chip_classes_require_single_stage(
        self, cache, small_chip, fast_constraints, fat_chip
    ):
        sharded = DecodeModel(
            name="sharded",
            decode_builder=tiny_builder("sharded", 64),
            max_batch_size=2,
            num_stages=2,
        )
        with pytest.raises(ValueError, match="num_stages == 1"):
            make_engine(
                cache,
                small_chip,
                fast_constraints,
                deployments=[sharded],
                num_chips=4,
                chip_classes={3: fat_chip},
            )

    def test_duplicate_tenants_rejected(self, cache, small_chip, fast_constraints):
        with pytest.raises(ValueError, match="duplicate tenant names"):
            make_engine(
                cache,
                small_chip,
                fast_constraints,
                tenants=[TenantSpec("t"), TenantSpec("t")],
            )

    def test_jobs_conflicts_with_supplied_cache(
        self, cache, small_chip, fast_constraints
    ):
        with pytest.raises(ValueError, match="jobs has no effect"):
            make_engine(cache, small_chip, fast_constraints, jobs=2)

    def test_unknown_model_in_workload(self, cache, small_chip, fast_constraints):
        engine = make_engine(cache, small_chip, fast_constraints)
        with pytest.raises(ValueError, match="unserved models"):
            engine.run([request(0, 0.0, model="mystery")])

    def test_duplicate_request_ids_rejected(self, cache, small_chip, fast_constraints):
        engine = make_engine(cache, small_chip, fast_constraints)
        with pytest.raises(ValueError, match="merge_decode_workloads"):
            engine.run([request(7, 0.0), request(7, 1.0)])


# --------------------------------------------------------------------------- #
# Serving behaviour
# --------------------------------------------------------------------------- #
class TestFleetServing:
    def test_two_models_share_one_pool(self, cache, small_chip, fast_constraints):
        alpha, beta = make_model("alpha"), make_model("beta", width=96)
        engine = make_engine(
            cache,
            small_chip,
            fast_constraints,
            deployments=[alpha, beta],
            num_chips=2,
            tenants=[TenantSpec("acme"), TenantSpec("globex")],
        )
        workload = merge_decode_workloads(
            decode_workload("alpha", num_requests=12, rate=2000.0, seed=1, tenant="acme"),
            decode_workload("beta", num_requests=8, rate=1500.0, seed=2, tenant="globex"),
        )
        report = engine.run(workload)
        assert report.policy == "fleet-cost-aware"
        assert report.model == "alpha+beta"
        # The books balance and every request kept its routed placement.
        assert len(report.completed) == len(workload)
        assert report.total_completed + report.shed == len(workload)
        served_models = {record.request.model for record in report.ok_requests}
        assert served_models == {"alpha", "beta"}
        # Per-tenant slices partition the totals exactly.
        slices = report.per_tenant()
        assert set(slices) == {"acme", "globex"}
        assert sum(s.total_completed for s in slices.values()) == report.total_completed
        assert sum(s.shed for s in slices.values()) == report.shed
        assert sum(s.total_tokens for s in slices.values()) == report.total_tokens

    def test_tenant_slice_zeroes_shared_fleet_counters(
        self, cache, small_chip, fast_constraints
    ):
        engine = make_engine(cache, small_chip, fast_constraints, num_chips=2)
        report = engine.run(
            [request(i, 0.0, tenant="acme") for i in range(4)]
            + [request(10 + i, 0.0, tenant="globex") for i in range(4)]
        )
        acme = report.tenant_slice("acme")
        assert acme.total_completed == 4
        # Chips and iterations are shared; a slice must not claim them.
        assert acme.iterations == 0
        assert acme.busy_chip_seconds == 0.0
        assert acme.scale_ups == 0

    def test_rebind_when_traffic_shifts(self, cache, small_chip, fast_constraints):
        """A drained replica re-binds to the model that needs it; the first
        bind of an unbound replica is free."""
        alpha, beta = make_model("alpha"), make_model("beta", width=96)
        engine = make_engine(
            cache, small_chip, fast_constraints, deployments=[alpha, beta], num_chips=1
        )
        engine.warm()
        unit = engine.iteration_latency("alpha")
        report = engine.run(
            [
                request(0, 0.0, model="alpha", tokens=2),
                # Arrives long after alpha drained: the single replica is
                # idle and re-binds to beta.
                request(1, 100 * unit, model="beta", tokens=2),
            ]
        )
        assert report.total_completed == 2
        assert report.rebinds == 1

    def test_request_parks_until_replica_drains(
        self, cache, small_chip, fast_constraints
    ):
        """With one replica busy on another model, a request with no legal
        candidate parks, then routes when the replica frees up."""
        alpha, beta = make_model("alpha"), make_model("beta", width=96)
        engine = make_engine(
            cache, small_chip, fast_constraints, deployments=[alpha, beta], num_chips=1
        )
        engine.warm()
        unit = engine.iteration_latency("alpha")
        report = engine.run(
            [
                request(0, 0.0, model="alpha", tokens=12),
                # Arrives mid-decode of the alpha request: parked, served
                # after alpha drains and the replica re-binds.
                request(1, 2 * unit, model="beta", tokens=2),
            ]
        )
        assert report.total_completed == 2
        assert report.rebinds == 1
        beta_record = next(r for r in report.completed if r.request.model == "beta")
        alpha_record = next(r for r in report.completed if r.request.model == "alpha")
        assert beta_record.admitted_time >= alpha_record.completion_time

    def test_interactive_preempts_best_effort_across_tenants(
        self, cache, small_chip, fast_constraints
    ):
        """SLO class, not tenant, is the scheduling currency: another
        tenant's interactive request evicts a resident best-effort one."""
        engine = make_engine(cache, small_chip, fast_constraints, num_chips=1)
        engine.warm()
        unit = engine.iteration_latency("alpha")
        report = engine.run(
            [
                request(
                    0, 0.0, tokens=20, slo_class=SLO_BEST_EFFORT, tenant="batchers"
                ),
                request(
                    1, 0.0, tokens=20, slo_class=SLO_BEST_EFFORT, tenant="batchers"
                ),
                request(2, 2 * unit, tokens=2, tenant="live"),
            ]
        )
        assert report.total_completed == 3
        assert report.preemptions >= 1
        preempted = [r for r in report.completed if r.preemptions > 0]
        assert all(r.request.tenant == "batchers" for r in preempted)

    def test_heterogeneous_classes_price_differently(
        self, cache, small_chip, fast_constraints, fat_chip
    ):
        engine = make_engine(
            cache,
            small_chip,
            fast_constraints,
            num_chips=2,
            chip_classes={1: fat_chip},
        )
        engine.warm()
        default = engine.iteration_latency("alpha")
        fat = engine.iteration_latency("alpha", chip_class=fat_chip)
        assert default > 0 and fat > 0
        assert default != fat

    def test_warm_is_idempotent_and_run_never_recompiles(
        self, cache, small_chip, fast_constraints
    ):
        engine = make_engine(cache, small_chip, fast_constraints, num_chips=2)
        engine.warm()
        compiled = engine.warm_compile_seconds
        engine.warm()
        assert engine.warm_compile_seconds == compiled
        report = engine.run(
            decode_workload("alpha", num_requests=10, rate=2000.0, seed=3)
        )
        assert report.cache.misses == 0

    def test_static_partition_respects_ownership(
        self, cache, small_chip, fast_constraints
    ):
        alpha, beta = make_model("alpha"), make_model("beta", width=96)
        engine = make_engine(
            cache,
            small_chip,
            fast_constraints,
            deployments=[alpha, beta],
            num_chips=2,
            router=StaticPartitionRouter({"alpha": [0], "beta": [1]}),
        )
        report = engine.run(
            merge_decode_workloads(
                decode_workload("alpha", num_requests=8, rate=2000.0, seed=1),
                decode_workload("beta", num_requests=8, rate=2000.0, seed=2),
            )
        )
        assert report.rebinds == 0
        for record in report.ok_requests:
            assert record.replica == (0 if record.request.model == "alpha" else 1)

    def test_contract_violating_router_raises(
        self, cache, small_chip, fast_constraints
    ):
        class Broken(Router):
            name = "broken"

            def route(self, req, view):
                return 99

        engine = make_engine(cache, small_chip, fast_constraints, router=Broken())
        with pytest.raises(RuntimeError, match="returned replica 99"):
            engine.run([request(0, 0.0)])

    def test_deterministic_under_stream_permutation(
        self, cache, small_chip, fast_constraints
    ):
        """Identical placements and completion times whichever order the
        per-tenant streams are composed in, and across fresh engines."""
        alpha, beta = make_model("alpha"), make_model("beta", width=96)
        streams = [
            decode_workload(
                "alpha", num_requests=15, rate=2500.0, seed=1, tenant="acme",
                slo_seconds=0.05, interactive_fraction=0.6,
            ),
            decode_workload(
                "beta", num_requests=10, rate=1200.0, seed=2, tenant="globex",
                slo_seconds=0.08, interactive_fraction=0.4,
            ),
        ]
        forward = merge_decode_workloads(*streams)
        backward = merge_decode_workloads(*reversed(streams))
        assert forward == backward

        def run_fresh(workload):
            engine = make_engine(
                cache,
                small_chip,
                fast_constraints,
                deployments=[make_model("alpha"), make_model("beta", width=96)],
                num_chips=2,
                router=CostAwareRouter(),
            )
            report = engine.run(workload)
            return [
                (r.request.request_id, r.replica, r.tokens_generated, r.completion_time)
                for r in report.completed
            ]

        assert run_fresh(forward) == run_fresh(backward)
