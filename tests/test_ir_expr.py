"""Tests for tensor expressions: shapes, FLOPs, bytes and signatures."""

from __future__ import annotations

import pytest

from repro.ir import DType, TensorExpression, conv2d, gather, matmul
from repro.ir.tensor import TensorRole, tensor


@pytest.fixture()
def mm():
    return matmul("mm", m=6, k=8, n=4).expr


@pytest.fixture()
def conv():
    return conv2d(
        "conv", batch=2, in_channels=3, out_channels=4, height=8, width=8, kernel=3
    ).expr


class TestMatMulExpression:
    def test_axes(self, mm):
        assert dict(mm.axes) == {"m": 6, "k": 8, "n": 4}

    def test_reduction_axes(self, mm):
        assert mm.reduction_axes == frozenset({"k"})

    def test_total_flops(self, mm):
        assert mm.total_flops == 2 * 6 * 8 * 4

    def test_tensor_shapes(self, mm):
        shapes = {spec.name: mm.tensor_shape(spec) for spec in mm.all_tensors}
        assert shapes == {"A": (6, 8), "B": (8, 4), "C": (6, 4)}

    def test_tensor_bytes_fp16(self, mm):
        a = next(spec for spec in mm.inputs if spec.name == "A")
        assert mm.tensor_bytes(a) == 6 * 8 * 2

    def test_weight_and_activation_bytes(self, mm):
        assert mm.weight_bytes == 8 * 4 * 2
        assert mm.activation_bytes == 6 * 8 * 2
        assert mm.output_bytes == 6 * 4 * 2

    def test_flops_with_custom_extents(self, mm):
        assert mm.flops({"m": 3, "k": 8, "n": 2}) == 2 * 3 * 8 * 2

    def test_arithmetic_intensity_positive(self, mm):
        assert mm.arithmetic_intensity > 0


class TestConvExpression:
    def test_compound_input_shape(self, conv):
        input_spec = next(spec for spec in conv.inputs if spec.name == "I")
        # h + kh resolves to 8 + 3 - 1 = 10.
        assert conv.tensor_shape(input_spec) == (2, 3, 10, 10)

    def test_output_shape(self, conv):
        assert conv.tensor_shape(conv.output) == (2, 4, 8, 8)

    def test_weight_shape(self, conv):
        weight = next(spec for spec in conv.inputs if spec.name == "W")
        assert conv.tensor_shape(weight) == (4, 3, 3, 3)

    def test_reduction_axes(self, conv):
        assert conv.reduction_axes == frozenset({"c", "kh", "kw"})

    def test_flops(self, conv):
        assert conv.total_flops == 2 * 2 * 4 * 3 * 8 * 8 * 3 * 3


class TestGatherExpression:
    def test_flops_ignore_vocab(self):
        expr = gather("g", vocab=1000, tokens=16, hidden=32).expr
        assert expr.total_flops == 16 * 32

    def test_table_is_weight(self):
        expr = gather("g", vocab=1000, tokens=16, hidden=32).expr
        table = next(spec for spec in expr.inputs if spec.name == "Table")
        assert table.role is TensorRole.WEIGHT
        assert expr.tensor_bytes(table) == 1000 * 32 * 2


class TestValidation:
    def test_rejects_unknown_axis(self):
        with pytest.raises(ValueError):
            TensorExpression(
                op_type="bad",
                axes={"m": 4},
                inputs=(tensor("X", ["m", "k"]),),
                output=tensor("Y", ["m"]),
            )

    def test_rejects_zero_extent(self):
        with pytest.raises(ValueError):
            TensorExpression(
                op_type="bad",
                axes={"m": 0},
                inputs=(tensor("X", ["m"]),),
                output=tensor("Y", ["m"]),
            )

    def test_rejects_empty_axes(self):
        with pytest.raises(ValueError):
            TensorExpression(
                op_type="bad", axes={}, inputs=(), output=tensor("Y", ["m"])
            )

    def test_rejects_bad_flops_axes(self):
        with pytest.raises(ValueError):
            TensorExpression(
                op_type="bad",
                axes={"m": 4},
                inputs=(tensor("X", ["m"]),),
                output=tensor("Y", ["m"]),
                flops_axes=frozenset({"z"}),
            )


class TestSignature:
    def test_identical_ops_share_signature(self):
        a = matmul("a", m=8, k=8, n=8)
        b = matmul("b", m=8, k=8, n=8)
        assert a.signature() == b.signature()

    def test_different_shape_changes_signature(self):
        a = matmul("a", m=8, k=8, n=8)
        b = matmul("b", m=8, k=8, n=16)
        assert a.signature() != b.signature()

    def test_different_dtype_changes_signature(self):
        a = matmul("a", m=8, k=8, n=8, dtype=DType.FP16)
        b = matmul("b", m=8, k=8, n=8, dtype=DType.FP32)
        assert a.signature() != b.signature()

    def test_signature_hashable(self):
        assert hash(matmul("a", m=4, k=4, n=4).signature()) is not None
