"""Tests for the compile-time benchmark harness (``python -m repro.bench``)."""

from __future__ import annotations

import copy
import json
from pathlib import Path

import pytest

from repro.bench import BenchConfig, BenchReport, SCHEMA_VERSION, run_bench
from repro.bench.__main__ import main as bench_main
from repro.bench.compare import compare_reports, config_from_baseline
from repro.bench.compare import main as compare_main

QUICK_ROW_KEYS = {
    "model",
    "batch",
    "status",
    "operators",
    "unique_operators",
    "dispatched_searches",
    "compile_seconds",
    "sketched",
    "evaluated",
    "materialized",
    "materialization_ratio",
    "pareto_plans",
    "cache_outcome_cold",
    "cache_outcome_warm",
    "cache_hit_seconds",
    "cache_hits",
}
REFERENCE_ROW_KEYS = {
    "reference_search_seconds",
    "reference_materialized",
    "materialized_reduction",
    "frontier_match",
}


class TestRunBench:
    @pytest.fixture(scope="class")
    def quick_report(self, tmp_path_factory) -> tuple[BenchReport, dict]:
        path = tmp_path_factory.mktemp("bench") / "BENCH_compile.json"
        report = run_bench(
            BenchConfig(models=("nerf", "opt-125m"), quick=True, output=path)
        )
        return report, json.loads(path.read_text())

    def test_rows_schema(self, quick_report):
        report, _ = quick_report
        assert len(report.rows) == 2
        for row in report.rows:
            assert QUICK_ROW_KEYS | REFERENCE_ROW_KEYS <= set(row)
            assert row["status"] == "ok"
            assert row["compile_seconds"] > 0

    def test_written_json(self, quick_report):
        _, payload = quick_report
        assert payload["benchmark"] == "compile"
        assert payload["schema_version"] == SCHEMA_VERSION
        assert payload["config"] == "quick"
        assert payload["host"]["cpu_count"] >= 1
        assert len(payload["rows"]) == 2
        assert payload["totals"]["models"] == 2

    def test_accounting_consistent(self, quick_report):
        report, _ = quick_report
        for row in report.rows:
            assert row["sketched"] >= row["evaluated"] >= row["materialized"] > 0
            # The eager reference builds every feasible candidate.
            assert row["reference_materialized"] == row["evaluated"]
            assert row["frontier_match"]

    def test_plan_cache_warm_hit(self, quick_report):
        report, _ = quick_report
        for row in report.rows:
            assert row["cache_outcome_cold"] == "compile"
            assert row["cache_outcome_warm"] == "hit-memory"
            assert row["cache_hits"] >= 1

    def test_totals_aggregate_cache_counters(self, quick_report):
        report, _ = quick_report
        cache = report.totals["cache"]
        assert cache["misses"] == 2
        assert cache["sketched_candidates"] == report.totals["sketched"]
        assert cache["materialized_plans"] == report.totals["materialized"]

    def test_shared_signatures_across_models_stay_consistent(self):
        """Each model gets a fresh plan cache, so operator signatures shared
        between models cannot skew a later model's accounting (regression:
        a run-wide cache made dispatched-search counts cover only the
        signatures earlier models had not already searched)."""
        report = run_bench(
            BenchConfig(models=("nerf", "nerf"), quick=True, output=None)
        )
        first, second = report.rows
        assert second["materialized"] == first["materialized"]
        assert second["reference_materialized"] == second["evaluated"]
        totals = report.totals
        assert totals["cache"]["sketched_candidates"] == totals["sketched"]
        assert totals["cache"]["materialized_plans"] == totals["materialized"]

    def test_no_output_path_writes_nothing(self):
        report = run_bench(
            BenchConfig(models=("nerf",), quick=True, reference=False, output=None)
        )
        assert report.rows[0]["status"] == "ok"
        assert "reference_materialized" not in report.rows[0]


class TestMaterializationTarget:
    """The headline claim of the streaming search: >= 3x fewer full
    ``build_plan`` materializations at unchanged frontiers on the compile-time
    benchmark models, in the default (non-quick) configuration."""

    @pytest.mark.parametrize("model", ("opt-125m", "bert-base"))
    def test_reduction_at_least_3x(self, model):
        report = run_bench(BenchConfig(models=(model,), output=None))
        row = report.rows[0]
        assert row["status"] == "ok"
        assert row["frontier_match"], "streaming frontier diverged from reference"
        assert row["materialized_reduction"] >= 3.0


class TestCompare:
    """The bench-regression gate (``python -m repro.bench.compare``)."""

    @pytest.fixture(scope="class")
    def quick_pair(self) -> tuple[dict, dict]:
        """Two quick runs of the same config: baseline and an identical rerun."""
        config = BenchConfig(models=("nerf",), quick=True, output=None)
        baseline = run_bench(config).as_dict()
        rerun = run_bench(config).as_dict()
        return baseline, rerun

    def test_identical_configs_pass(self, quick_pair):
        baseline, rerun = quick_pair
        assert compare_reports(baseline, rerun) == []

    def test_frontier_regression_fails(self, quick_pair):
        baseline, rerun = quick_pair
        broken = copy.deepcopy(rerun)
        broken["rows"][0]["frontier_match"] = False
        problems = compare_reports(baseline, broken)
        assert any("frontier_match" in problem for problem in problems)

    def test_materialization_growth_fails(self, quick_pair):
        baseline, rerun = quick_pair
        bloated = copy.deepcopy(rerun)
        bloated["rows"][0]["materialized"] += 10
        bloated["rows"][0]["materialization_ratio"] = 1.0
        bloated["rows"][0]["materialized_reduction"] = 1.0
        problems = compare_reports(baseline, bloated)
        assert any("materialized grew" in problem for problem in problems)
        assert any("materialization_ratio dropped" in problem for problem in problems)

    def test_changed_deterministic_counter_fails(self, quick_pair):
        baseline, rerun = quick_pair
        drifted = copy.deepcopy(rerun)
        drifted["rows"][0]["evaluated"] += 1
        problems = compare_reports(baseline, drifted)
        assert any("evaluated changed" in problem for problem in problems)

    def test_ratio_slack_tolerates_small_drops(self, quick_pair):
        baseline, rerun = quick_pair
        jittered = copy.deepcopy(rerun)
        ratio = jittered["rows"][0]["materialization_ratio"]
        jittered["rows"][0]["materialization_ratio"] = ratio * 0.98
        assert compare_reports(baseline, jittered, ratio_slack=0.05) == []
        problems = compare_reports(baseline, jittered, ratio_slack=0.0)
        assert any("materialization_ratio" in problem for problem in problems)

    def test_missing_model_fails(self, quick_pair):
        baseline, rerun = quick_pair
        empty = copy.deepcopy(rerun)
        empty["rows"] = []
        problems = compare_reports(baseline, empty)
        assert any("missing from the run" in problem for problem in problems)

    def test_dropped_counter_fails_instead_of_skipping(self, quick_pair):
        """A run that stops emitting a gated counter must fail, not go green —
        otherwise renaming a runner field silently turns the gate into a no-op."""
        baseline, rerun = quick_pair
        for field in ("evaluated", "materialized", "materialization_ratio",
                      "frontier_match"):
            for drop in (lambda r: r.pop(field), lambda r: r.update({field: None})):
                stripped = copy.deepcopy(rerun)
                drop(stripped["rows"][0])
                problems = compare_reports(baseline, stripped)
                assert any(
                    field in problem and "missing from the run" in problem
                    for problem in problems
                ), field

    def test_counter_absent_from_baseline_is_skipped(self, quick_pair):
        """Old baselines predating a counter stay comparable on the rest."""
        baseline, rerun = quick_pair
        old = copy.deepcopy(baseline)
        del old["rows"][0]["evaluated"]
        assert compare_reports(old, rerun) == []

    def test_config_mismatch_is_rejected_outright(self, quick_pair):
        baseline, rerun = quick_pair
        other = copy.deepcopy(rerun)
        other["config"] = "full"
        problems = compare_reports(baseline, other)
        assert problems == [
            problem for problem in problems if "config mismatch" in problem
        ]
        assert problems

    def test_status_regression_fails(self, quick_pair):
        baseline, rerun = quick_pair
        broken = copy.deepcopy(rerun)
        broken["rows"][0]["status"] = "oom"
        problems = compare_reports(baseline, broken)
        assert any("status regressed" in problem for problem in problems)

    def test_wall_clock_fields_are_never_compared(self, quick_pair):
        baseline, rerun = quick_pair
        slower = copy.deepcopy(rerun)
        for row in slower["rows"]:
            row["compile_seconds"] = row["compile_seconds"] * 100
            row["cache_hit_seconds"] = row["cache_hit_seconds"] * 100
            row["reference_search_seconds"] = row["reference_search_seconds"] * 100
        assert compare_reports(baseline, slower) == []

    def test_config_from_baseline_round_trips(self, quick_pair):
        baseline, _ = quick_pair
        config = config_from_baseline(baseline)
        assert list(config.models) == ["nerf"]
        assert config.quick is True
        assert config.reference is True
        assert config.output is None

    def test_cli_gate_passes_against_committed_baseline(self, capsys):
        """The acceptance check CI runs: a fresh benchmark in the committed
        baseline's own config must reproduce its deterministic counters."""
        baseline_path = Path(__file__).parent.parent / "BENCH_compile.json"
        code = compare_main([str(baseline_path)])
        stdout = capsys.readouterr().out
        assert code == 0, stdout
        assert "gate passed" in stdout

    def test_cli_fails_on_regression(self, quick_pair, tmp_path, capsys):
        baseline, rerun = quick_pair
        broken = copy.deepcopy(rerun)
        broken["rows"][0]["frontier_match"] = False
        base_path = tmp_path / "base.json"
        current_path = tmp_path / "current.json"
        base_path.write_text(json.dumps(baseline))
        current_path.write_text(json.dumps(broken))
        code = compare_main([str(base_path), "--current", str(current_path)])
        assert code == 1
        assert "FAILED" in capsys.readouterr().out


class TestCli:
    def test_quick_cli(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        code = bench_main(
            ["--quick", "--models", "nerf", "--no-reference", "--output", str(out)]
        )
        assert code == 0
        assert out.exists()
        stdout = capsys.readouterr().out
        assert "nerf" in stdout and "total:" in stdout

    def test_unknown_model_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            bench_main(["--models", "alexnet", "--output", str(tmp_path / "x.json")])
