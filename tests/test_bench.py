"""Tests for the compile-time benchmark harness (``python -m repro.bench``)."""

from __future__ import annotations

import json

import pytest

from repro.bench import BenchConfig, BenchReport, SCHEMA_VERSION, run_bench
from repro.bench.__main__ import main as bench_main

QUICK_ROW_KEYS = {
    "model",
    "batch",
    "status",
    "operators",
    "unique_operators",
    "dispatched_searches",
    "compile_seconds",
    "sketched",
    "evaluated",
    "materialized",
    "materialization_ratio",
    "pareto_plans",
    "cache_outcome_cold",
    "cache_outcome_warm",
    "cache_hit_seconds",
    "cache_hits",
}
REFERENCE_ROW_KEYS = {
    "reference_search_seconds",
    "reference_materialized",
    "materialized_reduction",
    "frontier_match",
}


class TestRunBench:
    @pytest.fixture(scope="class")
    def quick_report(self, tmp_path_factory) -> tuple[BenchReport, dict]:
        path = tmp_path_factory.mktemp("bench") / "BENCH_compile.json"
        report = run_bench(
            BenchConfig(models=("nerf", "opt-125m"), quick=True, output=path)
        )
        return report, json.loads(path.read_text())

    def test_rows_schema(self, quick_report):
        report, _ = quick_report
        assert len(report.rows) == 2
        for row in report.rows:
            assert QUICK_ROW_KEYS | REFERENCE_ROW_KEYS <= set(row)
            assert row["status"] == "ok"
            assert row["compile_seconds"] > 0

    def test_written_json(self, quick_report):
        _, payload = quick_report
        assert payload["benchmark"] == "compile"
        assert payload["schema_version"] == SCHEMA_VERSION
        assert payload["config"] == "quick"
        assert payload["host"]["cpu_count"] >= 1
        assert len(payload["rows"]) == 2
        assert payload["totals"]["models"] == 2

    def test_accounting_consistent(self, quick_report):
        report, _ = quick_report
        for row in report.rows:
            assert row["sketched"] >= row["evaluated"] >= row["materialized"] > 0
            # The eager reference builds every feasible candidate.
            assert row["reference_materialized"] == row["evaluated"]
            assert row["frontier_match"]

    def test_plan_cache_warm_hit(self, quick_report):
        report, _ = quick_report
        for row in report.rows:
            assert row["cache_outcome_cold"] == "compile"
            assert row["cache_outcome_warm"] == "hit-memory"
            assert row["cache_hits"] >= 1

    def test_totals_aggregate_cache_counters(self, quick_report):
        report, _ = quick_report
        cache = report.totals["cache"]
        assert cache["misses"] == 2
        assert cache["sketched_candidates"] == report.totals["sketched"]
        assert cache["materialized_plans"] == report.totals["materialized"]

    def test_shared_signatures_across_models_stay_consistent(self):
        """Each model gets a fresh plan cache, so operator signatures shared
        between models cannot skew a later model's accounting (regression:
        a run-wide cache made dispatched-search counts cover only the
        signatures earlier models had not already searched)."""
        report = run_bench(
            BenchConfig(models=("nerf", "nerf"), quick=True, output=None)
        )
        first, second = report.rows
        assert second["materialized"] == first["materialized"]
        assert second["reference_materialized"] == second["evaluated"]
        totals = report.totals
        assert totals["cache"]["sketched_candidates"] == totals["sketched"]
        assert totals["cache"]["materialized_plans"] == totals["materialized"]

    def test_no_output_path_writes_nothing(self):
        report = run_bench(
            BenchConfig(models=("nerf",), quick=True, reference=False, output=None)
        )
        assert report.rows[0]["status"] == "ok"
        assert "reference_materialized" not in report.rows[0]


class TestMaterializationTarget:
    """The headline claim of the streaming search: >= 3x fewer full
    ``build_plan`` materializations at unchanged frontiers on the compile-time
    benchmark models, in the default (non-quick) configuration."""

    @pytest.mark.parametrize("model", ("opt-125m", "bert-base"))
    def test_reduction_at_least_3x(self, model):
        report = run_bench(BenchConfig(models=(model,), output=None))
        row = report.rows[0]
        assert row["status"] == "ok"
        assert row["frontier_match"], "streaming frontier diverged from reference"
        assert row["materialized_reduction"] >= 3.0


class TestCli:
    def test_quick_cli(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        code = bench_main(
            ["--quick", "--models", "nerf", "--no-reference", "--output", str(out)]
        )
        assert code == 0
        assert out.exists()
        stdout = capsys.readouterr().out
        assert "nerf" in stdout and "total:" in stdout

    def test_unknown_model_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            bench_main(["--models", "alexnet", "--output", str(tmp_path / "x.json")])
