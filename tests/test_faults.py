"""Tests for fault injection and graceful degradation (repro.serving.faults)."""

from __future__ import annotations

import math
from dataclasses import replace

import pytest

from repro.core import T10Compiler
from repro.ir import OperatorGraph, elementwise, matmul
from repro.serving import (
    COMPILE,
    DECODE_SHED,
    HIT_MEMORY,
    SLO_BEST_EFFORT,
    ContinuousEngine,
    DecodeModel,
    DecodeRequest,
    FaultEvent,
    FaultSchedule,
    FaultStats,
    PlanCache,
    Watchdog,
    chip_death,
    group_link_degradation,
    link_degradation,
    restart,
)
from repro.serving.faults import FAULT_CHIP_DEATH, FAULT_LINK_DEGRADATION


def tiny_decode_builder(batch_size: int, *, width: int = 64) -> OperatorGraph:
    graph = OperatorGraph(name=f"tiny-decode-b{batch_size}")
    fc1 = graph.add(matmul("fc1", m=batch_size * 8, k=width, n=width))
    act = graph.add(
        elementwise("act", {"m": batch_size * 8, "n": width}, kind="relu"),
        inputs=[fc1],
    )
    graph.add(matmul("fc2", m=batch_size * 8, k=width, n=32), inputs=[act])
    return graph


@pytest.fixture()
def cache(small_cost_model, fast_constraints):
    return PlanCache(
        compiler_factory=lambda chip, constraints: T10Compiler(
            chip, cost_model=small_cost_model, constraints=constraints
        ),
    )


def make_model(*, max_batch_size: int = 4, num_stages: int = 1) -> DecodeModel:
    return DecodeModel(
        name="tiny",
        decode_builder=tiny_decode_builder,
        max_batch_size=max_batch_size,
        prefill_chunk=64,
        num_stages=num_stages,
    )


def make_engine(cache, small_chip, fast_constraints, **kwargs) -> ContinuousEngine:
    model = kwargs.pop("model", None) or make_model(
        max_batch_size=kwargs.pop("max_batch_size", 4)
    )
    return ContinuousEngine(
        model,
        chip=small_chip,
        constraints=fast_constraints,
        plan_cache=cache,
        **kwargs,
    )


def request(
    request_id: int,
    arrival: float,
    *,
    tokens: int = 4,
    prompt: int = 16,
    slo_class: str = "interactive",
) -> DecodeRequest:
    return DecodeRequest(
        request_id=request_id,
        model="tiny",
        arrival_time=arrival,
        prompt_tokens=prompt,
        max_new_tokens=tokens,
        slo_class=slo_class,
    )


# --------------------------------------------------------------------------- #
# Schedule construction and validation
# --------------------------------------------------------------------------- #
class TestFaultSchedule:
    def test_event_validation(self):
        with pytest.raises(ValueError, match="kind"):
            FaultEvent(time=0.0, kind="meteor-strike")
        with pytest.raises(ValueError, match=">= 0"):
            FaultEvent(time=-1.0, kind=FAULT_CHIP_DEATH, chip=0)
        with pytest.raises(ValueError, match="chip index"):
            chip_death(1.0, -1)
        with pytest.raises(ValueError, match="factor"):
            link_degradation(0.0, 1.0, 0.5)
        with pytest.raises(ValueError, match="window"):
            link_degradation(2.0, 1.0, 3.0)
        with pytest.raises(ValueError, match="warmup"):
            restart(1.0, 0, warmup_delay=-0.1)

    def test_schedule_sorts_and_iterates(self):
        schedule = FaultSchedule.of(
            [restart(5.0, 0), chip_death(1.0, 0), chip_death(1.0, 1)]
        )
        assert len(schedule) == 3
        assert [(ev.time, ev.kind, ev.chip) for ev in schedule] == [
            (1.0, FAULT_CHIP_DEATH, 0),
            (1.0, FAULT_CHIP_DEATH, 1),
            (5.0, "restart", 0),
        ]
        assert schedule.first_death_time == 1.0
        assert len(schedule.deaths) == 2

    def test_kill_and_restart(self):
        schedule = FaultSchedule.kill_and_restart(2, at=1.0, downtime=3.0)
        assert [(ev.time, ev.kind) for ev in schedule] == [
            (1.0, FAULT_CHIP_DEATH),
            (4.0, "restart"),
        ]
        with pytest.raises(ValueError, match="downtime"):
            FaultSchedule.kill_and_restart(0, at=1.0, downtime=0.0)

    def test_for_fleet_rejects_out_of_range_chips(self):
        schedule = FaultSchedule.of([chip_death(1.0, 3)])
        assert schedule.for_fleet(4) is schedule
        with pytest.raises(ValueError, match="chips \\[3\\]"):
            schedule.for_fleet(2)

    def test_merged(self):
        merged = FaultSchedule.of([chip_death(2.0, 0)]).merged(
            [link_degradation(1.0, 3.0, 2.0)]
        )
        assert [ev.kind for ev in merged] == [
            FAULT_LINK_DEGRADATION,
            FAULT_CHIP_DEATH,
        ]

    def test_link_factor_is_max_of_overlapping_windows(self):
        schedule = FaultSchedule.of(
            [
                link_degradation(1.0, 5.0, 2.0),
                link_degradation(3.0, 4.0, 6.0),
            ]
        )
        assert schedule.link_factor(0.5) == 1.0
        assert schedule.link_factor(1.0) == 2.0  # window start inclusive
        assert schedule.link_factor(3.5) == 6.0  # worst overlap wins, no stacking
        assert schedule.link_factor(4.5) == 2.0
        assert schedule.link_factor(5.0) == 1.0  # window end exclusive
        assert schedule.first_death_time == math.inf

    def test_group_death_kills_the_whole_group_at_once(self):
        schedule = FaultSchedule.group_death([2, 0, 2], at=1.0, downtime=3.0)
        assert [(ev.time, ev.kind, ev.chip) for ev in schedule] == [
            (1.0, FAULT_CHIP_DEATH, 0),
            (1.0, FAULT_CHIP_DEATH, 2),
            (4.0, "restart", 0),
            (4.0, "restart", 2),
        ]
        # Without a downtime the group stays dead: no restarts scheduled.
        assert len(FaultSchedule.group_death([0, 1], at=1.0)) == 2
        with pytest.raises(ValueError, match="non-empty"):
            FaultSchedule.group_death([], at=1.0)
        with pytest.raises(ValueError, match="downtime"):
            FaultSchedule.group_death([0], at=1.0, downtime=0.0)

    def test_class_outage_is_group_death_over_the_class(self):
        outage = FaultSchedule.class_outage([2, 3], at=5.0, downtime=2.0)
        group = FaultSchedule.group_death([2, 3], at=5.0, downtime=2.0)
        assert outage == group

    def test_group_link_degradation_scopes_by_chip_set(self):
        with pytest.raises(ValueError, match="non-empty"):
            group_link_degradation(0.0, 1.0, 2.0, [])
        schedule = FaultSchedule.of(
            [
                group_link_degradation(1.0, 5.0, 4.0, [0, 1]),
                link_degradation(2.0, 3.0, 2.0),
            ]
        )
        # Inside the scoped window: only the named chips pay the 4x factor.
        assert schedule.link_factor(1.5, chips=[0]) == 4.0
        assert schedule.link_factor(1.5, chips=[2]) == 1.0
        # A fleet-wide window applies to every chip set; the worst
        # applicable window wins, no stacking.
        assert schedule.link_factor(2.5, chips=[2]) == 2.0
        assert schedule.link_factor(2.5, chips=[1]) == 4.0
        # The chip-blind query (pre-fleet behaviour) sees every window.
        assert schedule.link_factor(1.5) == 4.0

    def test_watchdog_validation(self):
        with pytest.raises(ValueError, match="detection_delay"):
            Watchdog(detection_delay=-1.0)
        with pytest.raises(ValueError, match="degraded_shed_queue"):
            Watchdog(degraded_shed_queue=0)

    def test_fault_stats_summary(self):
        stats = FaultStats()
        assert not stats.any
        stats.chip_deaths = 1
        stats.requeued = 2
        stats.lost_tokens = 7
        assert stats.any
        assert "1 chip death(s)" in stats.summary()
        assert "7 tokens lost" in stats.summary()


# --------------------------------------------------------------------------- #
# Scoped plan-cache eviction (cold restart)
# --------------------------------------------------------------------------- #
class TestEvictScope:
    def test_evict_scope_drops_scope_and_nested_stages(
        self, cache, small_chip, fast_constraints
    ):
        graph = tiny_decode_builder(1)
        for scope in ("replica0-gen1", "replica0-gen1:stage1of2", "replica1-gen1"):
            lookup = cache.get_or_compile(graph, small_chip, fast_constraints, scope=scope)
            assert lookup.outcome == COMPILE
        dropped = cache.evict_scope("replica0-gen1")
        assert dropped == 2  # the scope itself plus its nested stage scope
        # The evicted scopes recompile; the sibling replica's scope is intact.
        assert (
            cache.get_or_compile(
                graph, small_chip, fast_constraints, scope="replica0-gen1"
            ).outcome
            == COMPILE
        )
        assert (
            cache.get_or_compile(
                graph, small_chip, fast_constraints, scope="replica1-gen1"
            ).outcome
            == HIT_MEMORY
        )

    def test_evict_scope_needs_a_prefix_and_tolerates_misses(self, cache):
        with pytest.raises(ValueError, match="non-empty"):
            cache.evict_scope("")
        assert cache.evict_scope("never-used") == 0


# --------------------------------------------------------------------------- #
# Engine integration: chaos replay
# --------------------------------------------------------------------------- #
class TestEngineFaults:
    def test_fault_free_run_is_unchanged_by_empty_schedule(
        self, cache, small_chip, fast_constraints
    ):
        workload = [request(i, 0.0, tokens=3) for i in range(6)]
        clean = make_engine(cache, small_chip, fast_constraints).run(workload)
        empty = make_engine(cache, small_chip, fast_constraints).run(
            workload, faults=FaultSchedule(), watchdog=Watchdog()
        )
        assert clean.completed == empty.completed
        assert clean.makespan == empty.makespan
        assert not empty.faults.any

    def test_death_requeues_in_flight_and_restart_recovers(
        self, cache, small_chip, fast_constraints
    ):
        engine = make_engine(cache, small_chip, fast_constraints)
        unit = engine.iteration_latency(1)
        schedule = FaultSchedule.kill_and_restart(
            0, at=2.5 * unit, downtime=10.0 * unit
        )
        report = make_engine(cache, small_chip, fast_constraints).run(
            [request(0, 0.0, tokens=20)], faults=schedule
        )
        stats = report.faults
        assert stats.chip_deaths == 1
        assert stats.restarts == 1
        assert stats.failovers == 1  # re-placed once the chip came back
        assert stats.requeued == 1
        assert stats.lost_tokens > 0  # decode progress died with the chip
        assert stats.lost_iterations == 1  # the aborted in-flight iteration
        record = report.completed[0]
        assert record.ok
        assert record.requeues == 1
        assert record.tokens_generated == 20  # served in full after requeue
        # The request could only finish after the downtime elapsed.
        assert record.completion_time > schedule.events[-1].time
        assert report.summary().count("faults:") == 1

    def test_permanent_death_still_balances_the_books(
        self, cache, small_chip, fast_constraints
    ):
        engine = make_engine(cache, small_chip, fast_constraints)
        unit = engine.iteration_latency(1)
        workload = [request(i, 0.0, tokens=10) for i in range(5)]
        report = make_engine(cache, small_chip, fast_constraints).run(
            workload, faults=FaultSchedule.of([chip_death(2.5 * unit, 0)])
        )
        # The whole fleet died with no spare and no restart: everything not
        # finished is shed, and completed + shed still covers every request.
        assert len(report.completed) == 5
        assert report.total_completed + report.shed == 5
        assert report.faults.failovers == 0
        stranded = [r for r in report.completed if r.status == DECODE_SHED]
        assert stranded
        for record in stranded:
            assert record.replica == -1
        # The in-flight request was requeued before being stranded: its shed
        # record keeps both the requeue count and its original admission.
        requeued = [r for r in stranded if r.requeues > 0]
        assert requeued
        assert all(not math.isnan(r.admitted_time) for r in requeued)

    def test_chaos_runs_are_deterministic(self, cache, small_chip, fast_constraints):
        engine = make_engine(cache, small_chip, fast_constraints, num_chips=2)
        unit = engine.iteration_latency(1)
        workload = [
            request(i, i * 0.3 * unit, tokens=6,
                    slo_class=SLO_BEST_EFFORT if i % 2 else "interactive")
            for i in range(14)
        ]
        schedule = FaultSchedule.kill_and_restart(0, at=3 * unit, downtime=8 * unit)
        watchdog = Watchdog(detection_delay=unit, degraded_shed_queue=2)

        def run():
            return make_engine(
                cache, small_chip, fast_constraints, num_chips=2, min_replicas=2
            ).run(workload, faults=schedule, watchdog=watchdog)

        first, second = run(), run()
        # repr-compare: shed records carry NaN admission sentinels, and
        # NaN != NaN would fail a plain == on otherwise-identical tuples.
        assert repr(first.completed) == repr(second.completed)
        assert first.makespan == second.makespan
        # Every fault counter is virtual-deterministic; restart_compile_seconds
        # is the one wall-clock field (the second run hits the scope the first
        # run's cold restart already compiled into the shared cache).
        assert replace(first.faults, restart_compile_seconds=0.0) == replace(
            second.faults, restart_compile_seconds=0.0
        )
        assert first.migrations == second.migrations

    def test_degraded_mode_sheds_best_effort_newest_first(
        self, cache, small_chip, fast_constraints
    ):
        engine = make_engine(
            cache, small_chip, fast_constraints,
            model=make_model(max_batch_size=1), num_chips=2, min_replicas=2,
        )
        unit = engine.iteration_latency(1)
        workload = [
            request(i, 0.0, tokens=12, slo_class=SLO_BEST_EFFORT) for i in range(6)
        ]
        report = make_engine(
            cache, small_chip, fast_constraints,
            model=make_model(max_batch_size=1), num_chips=2, min_replicas=2,
        ).run(
            workload,
            faults=FaultSchedule.of([chip_death(1.5 * unit, 0)]),
            watchdog=Watchdog(degraded_shed_queue=1),
        )
        stats = report.faults
        assert stats.chip_deaths == 1
        assert stats.degraded_sheds > 0
        assert report.shed >= stats.degraded_sheds
        # Newest-first: the surviving backlog serves older arrivals; every
        # degraded-mode shed is a best-effort request (never interactive).
        shed_ids = {
            r.request.request_id
            for r in report.completed
            if r.status == DECODE_SHED and r.requeues == 0
        }
        served_ids = {r.request.request_id for r in report.ok_requests}
        if shed_ids and served_ids:
            assert min(shed_ids) > min(served_ids)
        assert report.total_completed + report.shed == 6

    def test_link_degradation_slows_sharded_but_not_flat(
        self, cache, small_chip, fast_constraints
    ):
        window = FaultSchedule.of([link_degradation(0.0, 1e9, 8.0)])
        workload = [request(i, 0.0, tokens=5) for i in range(4)]
        # Flat replicas have no inter-chip links: virtual time is untouched.
        flat_clean = make_engine(cache, small_chip, fast_constraints).run(workload)
        flat_degraded = make_engine(cache, small_chip, fast_constraints).run(
            workload, faults=window
        )
        assert flat_degraded.makespan == flat_clean.makespan
        # A pipeline-sharded replica pays the slowed stage-boundary transfer.
        sharded_model = make_model(max_batch_size=2, num_stages=2)
        sharded_clean = make_engine(
            cache, small_chip, fast_constraints, model=sharded_model, num_chips=2
        ).run(workload)
        sharded_degraded = make_engine(
            cache, small_chip, fast_constraints, model=sharded_model, num_chips=2
        ).run(workload, faults=window)
        assert sharded_degraded.makespan > sharded_clean.makespan
        # Degradation reprices iterations; it neither kills chips nor sheds.
        assert sharded_degraded.faults.chip_deaths == 0
        assert sharded_degraded.total_completed == 4

    def test_cold_restart_recompiles_and_warm_restart_does_not(
        self, cache, small_chip, fast_constraints
    ):
        engine = make_engine(cache, small_chip, fast_constraints)
        unit = engine.iteration_latency(1)
        workload = [request(0, 0.0, tokens=25)]

        def run(cold_cache):
            eng = make_engine(cache, small_chip, fast_constraints)
            eng.warm()
            before = cache.stats.snapshot()
            report = eng.run(
                workload,
                faults=FaultSchedule.kill_and_restart(
                    0, at=2.5 * unit, downtime=5 * unit, cold_cache=cold_cache
                ),
            )
            return report, cache.stats.since(before).misses

        cold_report, cold_misses = run(cold_cache=True)
        warm_report, warm_misses = run(cold_cache=False)
        # The cold revival re-fetches every bucket under the replica's fresh
        # cache namespace: real compiles, wall-clock only.
        assert cold_misses > 0
        assert cold_report.faults.restart_compile_seconds > 0
        assert warm_misses == 0
        assert warm_report.faults.restart_compile_seconds == 0
        # Virtual time never sees the difference: both runs replay the same
        # schedule to the same makespan.
        assert cold_report.makespan == warm_report.makespan

    def test_schedule_is_validated_against_the_fleet(
        self, cache, small_chip, fast_constraints
    ):
        engine = make_engine(cache, small_chip, fast_constraints)
        with pytest.raises(ValueError, match="fleet has only 1"):
            engine.run([request(0, 0.0)], faults=FaultSchedule.of([chip_death(1.0, 5)]))
