"""Tests for the parallel compilation engine and the single-flight guard.

The engine's contract is *bit-for-bit determinism*: for any graph, chip and
constraint setting, ``jobs=N`` must produce exactly the serial compile's
frontiers, schedule, program and error behaviour.  These tests check that
contract on every registry model (quick mode), on both pool backends, and on
the failure paths, plus the SingleFlight semantics the serving cache relies
on.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core import (
    FAST_CONSTRAINTS,
    ParallelCompilationEngine,
    SingleFlight,
    T10Compiler,
    default_jobs,
    resolve_jobs,
)
from repro.core.parallel import BACKENDS
from repro.experiments.common import build_workload
from repro.hw.spec import ChipSpec, KiB
from repro.ir import OperatorGraph, matmul
from repro.models import list_models


def compile_pair(chip, cost_model, graph, *, jobs, backend="auto"):
    """Compile ``graph`` serially and with ``jobs`` workers; return both."""
    serial = T10Compiler(chip, cost_model=cost_model, constraints=FAST_CONSTRAINTS)
    with T10Compiler(
        chip,
        cost_model=cost_model,
        constraints=FAST_CONSTRAINTS,
        jobs=jobs,
        parallel_backend=backend,
    ) as parallel:
        return serial.compile(graph), parallel.compile(graph)


def assert_identical(serial, parallel):
    """The determinism guarantee, field by field."""
    assert parallel.status == serial.status
    assert parallel.error == serial.error
    assert list(parallel.pareto_plans) == list(serial.pareto_plans)
    assert parallel.pareto_plans == serial.pareto_plans
    assert parallel.search_stats == serial.search_stats
    assert parallel.schedule == serial.schedule
    assert parallel.program == serial.program


class TestDeterminism:
    @pytest.mark.parametrize("model_name", list_models())
    def test_registry_models_identical_at_jobs_4(
        self, ipu_chip, ipu_cost_model, model_name
    ):
        """jobs=4 equals jobs=1 on every registry model (quick workloads)."""
        graph = build_workload(model_name, 1, quick=True)
        serial, parallel = compile_pair(ipu_chip, ipu_cost_model, graph, jobs=4)
        assert_identical(serial, parallel)

    @pytest.mark.parametrize("backend", ["process", "thread", "serial"])
    def test_backends_agree(self, small_chip, small_cost_model, backend):
        graph = build_workload("nerf", 1, quick=True)
        serial, parallel = compile_pair(
            small_chip, small_cost_model, graph, jobs=3, backend=backend
        )
        assert_identical(serial, parallel)

    def test_oom_failure_is_identical(self, small_cost_model):
        """Infeasible graphs produce the same diagnosis, serial or parallel."""
        cramped = ChipSpec(
            name="cramped",
            num_cores=64,
            sram_per_core=32 * KiB,
            core_flops=100e9,
            link_bandwidth=5.5e9,
            link_latency=0.4e-6,
            offchip_bandwidth=8e9,
        )
        graph = OperatorGraph(name="too-big")
        graph.add(matmul("ok-ish", m=64, k=64, n=64))
        graph.add(matmul("huge", m=4096, k=4096, n=4096))
        serial, parallel = compile_pair(cramped, small_cost_model, graph, jobs=4)
        assert serial.status == "oom"
        assert parallel.status == "oom"
        assert parallel.error == serial.error
        # The partial frontier state stops at the same operator.
        assert parallel.pareto_plans == serial.pareto_plans
        assert parallel.search_stats == serial.search_stats


class TestStreamingMatchesReference:
    """Acceptance check for the streaming plan search: on every registry model
    the sketch/prune/materialize pipeline — serial and fanned out over two
    workers — produces frontiers bit-for-bit identical to the eager reference
    implementation (``IntraOpOptimizer.search_reference``), while materializing
    strictly fewer candidates."""

    @pytest.mark.parametrize("model_name", list_models())
    def test_registry_models_match_reference(
        self, ipu_chip, ipu_cost_model, model_name
    ):
        graph = build_workload(model_name, 1, quick=True)
        serial = T10Compiler(
            ipu_chip, cost_model=ipu_cost_model, constraints=FAST_CONSTRAINTS
        )
        with T10Compiler(
            ipu_chip,
            cost_model=ipu_cost_model,
            constraints=FAST_CONSTRAINTS,
            jobs=2,
            parallel_backend="thread",
        ) as two_jobs:
            serial_result = serial.engine.search_graph(graph, serial.intra_op)
            parallel_result = two_jobs.engine.search_graph(graph, two_jobs.intra_op)
        assert parallel_result.pareto == serial_result.pareto
        assert parallel_result.stats == serial_result.stats
        assert parallel_result.error == serial_result.error

        reference = T10Compiler(
            ipu_chip, cost_model=ipu_cost_model, constraints=FAST_CONSTRAINTS
        )
        total_evaluated = total_materialized = 0
        seen: set[tuple] = set()
        for operator in graph.operators:
            if operator.name not in serial_result.pareto:
                break  # search stopped at the first infeasible operator
            signature = operator.signature()
            if signature in seen:
                continue
            seen.add(signature)
            reference_plans, reference_stats = reference.intra_op.search_reference(
                operator
            )
            assert serial_result.pareto[operator.name] == reference_plans
            stats = serial_result.stats[operator.name]
            assert stats.evaluated == reference_stats.evaluated
            assert stats.filtered == reference_stats.filtered
            assert stats.optimized == reference_stats.optimized
            assert stats.materialized <= reference_stats.materialized
            total_evaluated += stats.evaluated
            total_materialized += stats.materialized
        if serial_result.ok:
            assert total_materialized < total_evaluated


class TestEngine:
    def test_dedupes_signatures_before_dispatch(
        self, small_chip, small_cost_model, fast_constraints
    ):
        compiler = T10Compiler(
            small_chip, cost_model=small_cost_model, constraints=fast_constraints
        )
        graph = OperatorGraph(name="repeated")
        for i in range(6):
            graph.add(matmul(f"mm{i}", m=128, k=64, n=128))
        result = compiler.engine.search_graph(graph, compiler.intra_op)
        assert result.ok
        assert result.unique_operators == 1
        assert result.dispatched == 1
        assert len(result.pareto) == 6
        # All six operators share one frontier object (searched once).
        assert len({id(plans) for plans in result.pareto.values()}) == 1

    def test_warm_cache_dispatches_nothing(
        self, small_chip, small_cost_model, fast_constraints
    ):
        compiler = T10Compiler(
            small_chip, cost_model=small_cost_model, constraints=fast_constraints
        )
        graph = OperatorGraph(name="g")
        graph.add(matmul("mm", m=128, k=64, n=128))
        first = compiler.engine.search_graph(graph, compiler.intra_op)
        second = compiler.engine.search_graph(graph, compiler.intra_op)
        assert first.dispatched == 1
        assert second.dispatched == 0
        assert second.pareto == first.pareto

    def test_jobs_resolution(self):
        assert resolve_jobs(None) == default_jobs()
        assert resolve_jobs(3) == 3
        assert default_jobs() >= 1
        with pytest.raises(ValueError):
            resolve_jobs(0)

    def test_unknown_backend_rejected(self, small_chip, small_cost_model):
        assert "auto" in BACKENDS
        with pytest.raises(ValueError):
            ParallelCompilationEngine(
                small_chip,
                small_cost_model,
                FAST_CONSTRAINTS,
                jobs=2,
                backend="gpu",
            )

    def test_close_is_idempotent(self, small_chip, small_cost_model, fast_constraints):
        compiler = T10Compiler(
            small_chip,
            cost_model=small_cost_model,
            constraints=fast_constraints,
            jobs=2,
            parallel_backend="thread",
        )
        graph = OperatorGraph(name="g")
        graph.add(matmul("a", m=128, k=64, n=128))
        graph.add(matmul("b", m=64, k=128, n=64))
        assert compiler.compile(graph).ok
        compiler.close()
        compiler.close()

    def test_compiler_jobs_property(self, small_chip, small_cost_model):
        with T10Compiler(
            small_chip, cost_model=small_cost_model, jobs=2, parallel_backend="thread"
        ) as compiler:
            assert compiler.jobs == 2


class TestSingleFlight:
    def test_serial_calls_each_run(self):
        flight = SingleFlight()
        calls = []
        for i in range(3):
            value, leader = flight.do("k", lambda i=i: calls.append(i) or i)
            assert leader
            assert value == i
        assert calls == [0, 1, 2]

    def test_concurrent_callers_share_one_execution(self):
        flight = SingleFlight()
        started = threading.Event()
        release = threading.Event()
        executions = []

        def slow():
            executions.append(threading.current_thread().name)
            started.set()
            release.wait(timeout=5)
            return "result"

        results: list[tuple[str, bool]] = []

        def caller():
            results.append(flight.do("k", slow))

        threads = [threading.Thread(target=caller) for _ in range(8)]
        threads[0].start()
        assert started.wait(timeout=5)
        assert flight.in_flight("k")
        for thread in threads[1:]:
            thread.start()
        time.sleep(0.05)  # let followers reach the wait
        release.set()
        for thread in threads:
            thread.join(timeout=5)
        assert len(executions) == 1
        assert len(results) == 8
        assert all(value == "result" for value, _ in results)
        assert sum(1 for _, leader in results if leader) == 1
        assert not flight.in_flight("k")

    def test_leader_exception_propagates_to_followers(self):
        flight = SingleFlight()
        started = threading.Event()
        release = threading.Event()

        def failing():
            started.set()
            release.wait(timeout=5)
            raise RuntimeError("boom")

        errors: list[BaseException] = []

        def caller():
            try:
                flight.do("k", failing)
            except RuntimeError as exc:
                errors.append(exc)

        threads = [threading.Thread(target=caller) for _ in range(4)]
        threads[0].start()
        assert started.wait(timeout=5)
        for thread in threads[1:]:
            thread.start()
        time.sleep(0.05)
        release.set()
        for thread in threads:
            thread.join(timeout=5)
        assert len(errors) == 4
        assert all("boom" in str(exc) for exc in errors)
        # The failed call is forgotten: the next caller retries.
        value, leader = flight.do("k", lambda: "recovered")
        assert value == "recovered" and leader

    def test_distinct_keys_do_not_serialise(self):
        flight = SingleFlight()
        order: list[str] = []
        gate = threading.Event()

        def slow_a():
            order.append("a-start")
            gate.wait(timeout=5)
            order.append("a-end")
            return "a"

        thread = threading.Thread(target=lambda: flight.do("a", slow_a))
        thread.start()
        deadline = time.time() + 5
        while "a-start" not in order and time.time() < deadline:
            time.sleep(0.001)
        value, leader = flight.do("b", lambda: "b")  # must not block on "a"
        assert value == "b" and leader
        gate.set()
        thread.join(timeout=5)
        assert order == ["a-start", "a-end"]
