"""LLM serving study: OPT decoder layers on the IPU with T10 versus an A100.

Run with::

    python examples/llm_serving.py

Mirrors the §6.7 experiment of the paper: decode-mode transformer layers are
memory-bandwidth-bound on a GPU (every weight is re-read from HBM for a
handful of tokens), while T10 keeps the weights resident in the IPU's
distributed on-chip memory and only shifts small activations between cores.
"""

from __future__ import annotations

from repro import Executor, IPU_MK2, T10Compiler
from repro.baselines import GPURooflineModel
from repro.models import build_opt


def main() -> None:
    executor = Executor(IPU_MK2)
    compiler = T10Compiler(IPU_MK2)
    gpu = GPURooflineModel()

    print(f"{'model':<10} {'batch':>6} {'A100 (ms)':>12} {'IPU+T10 (ms)':>14} {'speedup':>9}")
    for size in ("1.3b", "6.7b", "13b"):
        for batch in (2, 8, 32, 128):
            graph = build_opt(batch, size=size)
            gpu_latency = gpu.estimate(graph).total_time
            ipu = executor.evaluate(compiler, graph)
            if not ipu.ok:
                print(f"opt-{size:<6} {batch:>6} {gpu_latency * 1e3:>12.3f} {'does not fit':>14}")
                continue
            speedup = gpu_latency / ipu.latency
            print(
                f"opt-{size:<6} {batch:>6} {gpu_latency * 1e3:>12.3f} "
                f"{ipu.latency * 1e3:>14.3f} {speedup:>8.2f}x"
            )
    print(
        "\nThe IPU advantage is largest at small batch sizes (HBM-bound decoding) "
        "and shrinks as both devices become compute-bound, as in Figure 23."
    )


if __name__ == "__main__":
    main()
