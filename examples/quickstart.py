"""Quickstart: compile a small transformer block with T10 and inspect the result.

Run with::

    python examples/quickstart.py

It builds a two-layer BERT-style encoder, compiles it for the simulated
Graphcore IPU MK2 with T10 and with the Roller baseline, runs both programs on
the chip simulator, and prints the end-to-end latency, the communication
fraction and the chosen execution plan of the heaviest operator.
"""

from __future__ import annotations

from repro import Executor, IPU_MK2, T10Compiler
from repro.baselines import RollerCompiler
from repro.models import build_bert


def main() -> None:
    graph = build_bert(batch_size=1, num_layers=2)
    print(f"Workload: {graph.summary()}\n")

    executor = Executor(IPU_MK2)
    t10_compiler = T10Compiler(IPU_MK2)

    t10 = executor.evaluate(t10_compiler, graph)
    roller = executor.evaluate(RollerCompiler(IPU_MK2), graph)

    print(f"{'compiler':<10} {'latency':>12} {'inter-core share':>18} {'compile time':>14}")
    for result in (roller, t10):
        print(
            f"{result.compiler_name:<10} {result.latency * 1e3:>10.3f} ms "
            f"{result.comm_fraction:>16.0%} {result.compile_time_seconds:>12.1f} s"
        )
    print(f"\nT10 speedup over Roller: {t10.speedup_over(roller):.2f}x")

    # Look at the plan T10 chose for the feed-forward up-projection.
    compiled = t10.compilation
    op_name = "layer0.ffn_up"
    entry = compiled.schedule.per_op[op_name]
    print(f"\nChosen plan for {op_name}:")
    print(f"  active: {entry.active_plan.describe()}")
    print(f"  idle:   {entry.idle_plan.describe()}")
    print(f"  setup:  {entry.setup_bytes / 1024:.1f} KiB per core, "
          f"{entry.setup_time_est * 1e6:.1f} us")
    for config in entry.active_plan.rtensors.values():
        print(f"    {config.describe()}")


if __name__ == "__main__":
    main()
