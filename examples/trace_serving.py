"""Trace a continuous-batching serving run and export it for Perfetto.

Run with::

    python examples/trace_serving.py

Serves a small deterministic decode workload with tracing enabled, then
writes ``trace_serving.json`` — drag it into https://ui.perfetto.dev (or
``chrome://tracing``) to see:

* one *process* per clock domain and engine run (e.g.
  ``continuous@2chips [virtual]``),
* one occupancy track per chip showing every decode iteration,
* a ``requests`` lane where each request's whole lifecycle (enqueue →
  admission → retirement or shed) renders as one async span, stitched
  across tracks by flow arrows,
* a ``fleet`` track with queue-depth and active-replica counters, and
* wall-clock processes for the compiler phases and plan-cache lookups.

The same trace is available from every entry point via ``--trace``::

    python -m repro.experiments fig27 --quick --trace fig27.json
    python -m repro.bench --quick --trace bench.json

See docs/observability.md for the full span taxonomy.
"""

from __future__ import annotations

from repro.core.constraints import FAST_CONSTRAINTS
from repro.models import opt_decode_session
from repro.obs import summarize, to_chrome_trace, validate_chrome_trace
from repro.experiments.common import trace_session
from repro.serving import ContinuousEngine, DecodeModel, PlanCache, decode_workload

OUT = "trace_serving.json"


def main() -> None:
    model = DecodeModel(
        name="opt-125m",
        decode_builder=opt_decode_session("125m", num_layers=1, kv_len=256),
        max_batch_size=4,
        prefill_chunk=64,
    )
    cache = PlanCache()
    engine = ContinuousEngine(
        model, num_chips=2, constraints=FAST_CONSTRAINTS, plan_cache=cache
    )

    # ``trace_session`` installs an ambient tracer for the block and exports
    # it on exit; every layer underneath — engine, worker pool, plan cache,
    # compiler — picks it up without any extra wiring.  The first
    # ``iteration_latency`` probe compiles the batch buckets, so the compile
    # phases and cache lookups land in the trace too (as wall-clock tracks).
    with trace_session(OUT) as tracer:
        unit = engine.iteration_latency(1)
        mean_iterations = model.ideal_iterations(72, 26)
        workload = decode_workload(
            model.name,
            num_requests=40,
            rate=8.0 * 2 / (mean_iterations * unit),
            seed=0,
            interactive_fraction=0.75,
            slo_seconds=lambda prompt, output: (
                1.5 * model.ideal_iterations(prompt, output) * unit
            ),
        )
        report = engine.run(workload)

    print(report.summary())
    print()
    print(summarize(tracer.events(), tracer.metrics.as_dict()))
    problems = validate_chrome_trace(to_chrome_trace(tracer))
    assert not problems, problems
    print(f"\nopen {OUT} in https://ui.perfetto.dev")
    cache.close()


if __name__ == "__main__":
    main()
