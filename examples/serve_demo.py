"""Serving demo: two models behind the dynamic-batching scheduler.

Run with::

    PYTHONPATH=src python examples/serve_demo.py

Deploys a truncated BERT encoder and a Llama2-7B decoder layer on a
two-chip IPU fleet, warms the plan cache (each batch bucket compiles
exactly once), then serves a mixed Poisson workload twice: once cold
(compilation rides on the first requests) and once warm (every batch is a
plan-cache hit).  The comparison shows the cache collapsing steady-state
compile cost to zero.
"""

from __future__ import annotations

from repro.core.constraints import FAST_CONSTRAINTS
from repro.experiments.common import print_table
from repro.hw.spec import IPU_MK2
from repro.serving import ServedModel, ServingScheduler, poisson_workload


def main() -> None:
    scheduler = ServingScheduler(
        [
            ServedModel.from_registry("bert", num_layers=2, max_batch_size=8),
            ServedModel.from_registry("llama2-7b", num_layers=1, max_batch_size=8),
        ],
        chip=IPU_MK2,
        num_chips=2,
        batch_window=5e-4,
        constraints=FAST_CONSTRAINTS,
    )

    # Offer each model roughly twice its single-chip batch-1 capacity so the
    # batcher actually has queues to batch.
    rates = {
        name: 2.0 / scheduler.batch_latency(name, 1)
        for name in ("bert", "llama2-7b")
    }
    requests = poisson_workload(rates, num_requests=200, seed=42)

    print("== Cold start: compilation rides on the first requests ==")
    cold = scheduler.serve(requests)
    print_table(cold.rows())
    print(cold.summary())

    print()
    print("== Steady state: every batch is a plan-cache hit ==")
    warm = scheduler.serve(requests)
    print_table(warm.rows())
    print(warm.summary())

    print()
    speedup = cold.overall_percentiles["p99"] / warm.overall_percentiles["p99"]
    print(
        f"Warm p99 is {speedup:.1f}x better than cold p99: the plan cache "
        f"amortised {warm.cache.saved_seconds:.1f}s of compilation away."
    )


if __name__ == "__main__":
    main()
