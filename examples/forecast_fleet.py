"""Forecast-ahead provisioning vs reactive autoscaling on a bursty trace.

Run with::

    python examples/forecast_fleet.py

Capacity takes time: a real replica must boot, load weights and warm
caches before it serves, so a scaling decision only pays off one
``provision_delay`` after it is taken.  This example replays a seeded
trace (:mod:`repro.serving.traffic`) — a diurnal base tide plus a flash
crowd erupting in the tide's trough — through one warmed
:class:`FleetEngine` twice, varying only the capacity policy:

* **reactive** (:class:`ReactiveScaler`) scales on *queue depth* — a
  trailing indicator: the queue only grows once capacity is already
  insufficient, so every scale-up lands a provisioning delay after the
  burst needed it, and keeps over-steering after the burst passes.
* **forecast** (:class:`ForecastScaler`) watches each tick's *arrival
  rate* — a leading indicator — extrapolates it one provisioning delay
  ahead with a :class:`LinearTrendForecaster`, and provisions the
  cheapest :class:`BlueprintPlanner` blueprint (replicas x stages x batch
  bucket, priced by the same iteration-cost model the simulator runs on)
  that serves the *predicted* rate within the SLO.  The flash crowd's
  ramp is visible while it is still ramping, so capacity lands with the
  load.

Provisioned-but-idle and still-booting capacity is paid for
(``provisioned_chip_seconds``), which makes goodput per chip-second an
honest figure of merit.  Everything runs in seeded virtual time, so both
runs replay bit-identically.
"""

from __future__ import annotations

from repro.core.constraints import FAST_CONSTRAINTS
from repro.models import opt_decode_session
from repro.serving import (
    BlueprintPlanner,
    CostAwareRouter,
    DecodeModel,
    FleetEngine,
    ForecastScaler,
    LinearTrendForecaster,
    PlanCache,
    ReactiveScaler,
    TrafficShape,
    burstiness,
    diurnal_workload,
    flash_crowd_workload,
    merge_decode_workloads,
)


def main() -> None:
    model = DecodeModel(
        name="opt-125m",
        decode_builder=opt_decode_session("125m", num_layers=1, kv_len=256),
        max_batch_size=4,
        prefill_chunk=64,
    )
    cache = PlanCache()
    engines = {
        scheme: FleetEngine(
            [model],
            num_chips=4,
            router=CostAwareRouter(),
            constraints=FAST_CONSTRAINTS,
            plan_cache=cache,
        )
        for scheme in ("reactive", "forecast")
    }
    for engine in engines.values():
        engine.warm()  # second warm is all cache hits

    # Express time and load in the cost model's own units: the scaler ticks
    # every 24 batch-1 iterations, provisioning takes 8 ticks, and the trace
    # peaks at ~4x one replica's sustained full-batch capacity.
    reference = engines["forecast"]
    unit = reference.iteration_latency("opt-125m", 1)
    mean_iterations = model.ideal_iterations(72, 26)
    replica_rate = model.max_batch_size / (
        mean_iterations * reference.iteration_latency("opt-125m", 4)
    )
    interval = 24 * unit
    provision_delay = 8 * interval
    horizon = 100 * interval
    slo = lambda prompt, output: (  # noqa: E731
        1.25 * model.ideal_iterations(prompt, output) * unit
    )
    # A diurnal base tide plus a flash crowd that erupts in the tide's
    # trough — the regime where provisioning ahead matters: the fleet has
    # scaled down for the quiet phase exactly when the spike begins.
    workload = merge_decode_workloads(
        diurnal_workload(
            "opt-125m",
            base_rate=0.9 * replica_rate,
            period=0.6 * horizon,
            amplitude=0.7,
            duration=horizon,
            seed=1,
            tenant="steady",
            interactive_fraction=0.9,
            slo_seconds=slo,
        ),
        flash_crowd_workload(
            "opt-125m",
            base_rate=0.15 * replica_rate,
            start=0.3 * horizon,
            ramp=12 * interval,
            hold=12 * interval,
            decay=8 * interval,
            peak_multiplier=16.0,
            duration=horizon,
            seed=3,
            tenant="flash",
            interactive_fraction=0.9,
            slo_seconds=slo,
        ),
    )
    print(
        f"trace: {len(workload)} requests over {horizon / interval:.0f} ticks, "
        f"burstiness {burstiness(workload, window=interval):.1f}x "
        "(peak-to-mean windowed rate)\n"
    )

    shape = TrafficShape(
        mean_prompt=72, mean_output=26, slo_seconds=1.25 * mean_iterations * unit
    )

    def make_scaler(scheme: str, engine: FleetEngine):
        """Fresh per run — forecasters carry observation state across ticks."""
        if scheme == "reactive":
            return ReactiveScaler(
                interval=interval,
                provision_delay=provision_delay,
                scale_up_queue=model.max_batch_size,
            )
        return ForecastScaler(
            BlueprintPlanner.for_engine(engine),
            {"opt-125m": shape},
            interval=interval,
            provision_delay=provision_delay,
            make_forecaster=lambda: LinearTrendForecaster(window=8),
        )

    for scheme, engine in engines.items():
        report = engine.run(workload, scaler=make_scaler(scheme, engine))
        goodput_per_chip = report.slo_met / report.provisioned_chip_seconds
        print(f"=== {scheme} ===")
        print(
            f"  {report.slo_met}/{len(report.completed)} within SLO "
            f"({report.slo_attainment:.0%}), {report.shed} shed"
        )
        print(
            f"  provisioning: {report.provision_ups} ups / "
            f"{report.provision_downs} downs, peak {report.peak_provisioned_chips} "
            f"chips, {report.provisioned_chip_seconds:.3f} paid chip-seconds"
        )
        print(f"  goodput {goodput_per_chip:.0f} SLO-met requests per chip-second\n")

    print(
        "The forecaster sees the flash crowd while it is still ramping and "
        "provisions ahead of it; the reactive scaler only reacts once the "
        "queue is deep — one full provisioning delay too late — then keeps "
        "adding replicas that arrive after the burst has passed.  Same "
        "served load, fewer and better-timed provisioning actions, less "
        "paid-for idle capacity: more goodput per chip-second.  The fig32 "
        "experiment replays a larger three-tenant trace where the win is a "
        "strict double one (goodput per chip-second AND SLO attainment)."
    )
    cache.close()


if __name__ == "__main__":
    main()
