"""Scalability study: how T10 and Roller scale with the number of cores.

Run with::

    python examples/scalability_study.py

Reproduces the shape of Figure 21: smaller chips are emulated by restricting
the cores available to the compiler, larger ones with the Virtual-IPU
configuration whose inter-chip links lower the effective inter-core
bandwidth.  T10 keeps improving with more cores; Roller's VGM traffic does
not, and can regress once shifts cross the chip boundary.
"""

from __future__ import annotations

from repro import Executor, T10Compiler
from repro.baselines import RollerCompiler
from repro.experiments.fig21_scalability import chip_for_cores
from repro.models import build_resnet


def main() -> None:
    graph = build_resnet(8)
    print(f"Workload: {graph.summary()}\n")
    print(
        f"{'cores':>6} {'chip':<12} {'Roller (ms)':>12} {'T10 (ms)':>10} "
        f"{'T10 transfer (ms)':>18}"
    )
    for cores in (368, 736, 1472, 2944, 5888):
        chip = chip_for_cores(cores)
        executor = Executor(chip)
        roller = executor.evaluate(RollerCompiler(chip), graph)
        t10 = executor.evaluate(T10Compiler(chip), graph)
        roller_ms = f"{roller.latency * 1e3:.2f}" if roller.ok else "x"
        t10_ms = f"{t10.latency * 1e3:.2f}" if t10.ok else "x"
        transfer = f"{t10.intercore_time * 1e3:.2f}" if t10.ok else "x"
        print(f"{cores:>6} {chip.name:<12} {roller_ms:>12} {t10_ms:>10} {transfer:>18}")


if __name__ == "__main__":
    main()
