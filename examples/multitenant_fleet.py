"""Multi-model, multi-tenant serving on one shared chip pool.

Run with::

    python examples/multitenant_fleet.py

Two tenants drive two different models — a hot ``chat`` tenant on
autoregressive OPT decode and a lighter ``search`` tenant on single-pass
BERT encodes — through one :class:`FleetEngine` twice on the same
heterogeneous three-chip pool (two IPUs plus one fig22-style GPU class)
and one shared plan cache:

* **partition** pins each model to its own replicas
  (:class:`StaticPartitionRouter`), the classic deployment style: chat
  owns the IPUs, search is stuck on the GPU whether or not its deadlines
  are reachable there, and
* **fleet** shares the whole pool (:class:`CostAwareRouter`): each request
  is placed on the cheapest compatible replica priced by the same
  iteration-cost model the simulator runs on, and a drained replica
  *re-binds* to whichever model the traffic needs next.

The policy order per event is route -> admit -> preempt -> shed ->
autoscale; SLO class, not tenant, is the scheduling currency.  Everything
runs in virtual time, so both runs are exactly reproducible.
"""

from __future__ import annotations

from repro.core.constraints import FAST_CONSTRAINTS
from repro.hw.spec import A100_CHIP
from repro.models import build_bert, opt_decode_session
from repro.serving import (
    CostAwareRouter,
    DecodeModel,
    FleetEngine,
    PlanCache,
    StaticPartitionRouter,
    TenantSpec,
    decode_workload,
    merge_decode_workloads,
)


def main() -> None:
    opt = DecodeModel(
        name="opt-125m",
        decode_builder=opt_decode_session("125m", num_layers=1, kv_len=256),
        max_batch_size=8,
        prefill_chunk=64,
    )
    bert = DecodeModel(
        name="bert",
        # Single-pass models join the fleet as one-iteration deployments:
        # prompt within one prefill chunk, one output token.
        decode_builder=lambda batch: build_bert(batch, seq_len=32, num_layers=1),
        max_batch_size=4,
        prefill_chunk=64,
    )
    tenants = [
        TenantSpec("chat", fairness_floor=0.4),
        TenantSpec("search", fairness_floor=0.6),
    ]
    # One plan cache serves both schemes (and both tenants — plans are shared
    # by fingerprint, hits attributed per tenant), so the second engine warms
    # without a single compilation.
    cache = PlanCache()
    engines = {
        "partition": FleetEngine(
            [opt, bert],
            tenants=tenants,
            num_chips=3,
            chip_classes={2: A100_CHIP},
            router=StaticPartitionRouter({"opt-125m": [0, 1], "bert": [2]}),
            constraints=FAST_CONSTRAINTS,
            plan_cache=cache,
        ),
        "fleet": FleetEngine(
            [opt, bert],
            tenants=tenants,
            num_chips=3,
            chip_classes={2: A100_CHIP},
            router=CostAwareRouter(),
            constraints=FAST_CONSTRAINTS,
            plan_cache=cache,
        ),
    }

    # Offered load in model-relative units: the chat tenant is overloaded
    # inside its two-chip partition share while the pool as a whole has
    # headroom — the imbalance routing can harvest and a static carve cannot.
    reference = engines["fleet"]
    unit_opt = reference.iteration_latency("opt-125m")
    unit_bert = reference.iteration_latency("bert")
    opt_iterations = opt.ideal_iterations(40, 26)
    bert_iterations = bert.ideal_iterations(40, 1)
    workload = merge_decode_workloads(
        decode_workload(
            "opt-125m",
            num_requests=60,
            rate=14.0 * 2 / (opt_iterations * unit_opt),
            seed=0,
            interactive_fraction=0.75,
            slo_seconds=lambda p, o: 1.5 * opt.ideal_iterations(p, o) * unit_opt,
            tenant="chat",
        ),
        decode_workload(
            "bert",
            num_requests=25,
            rate=1.0 / (bert_iterations * unit_bert),
            seed=1,
            output_tokens=(1, 1),
            slo_seconds=lambda p, o: 8.0 * bert.ideal_iterations(p, o) * unit_bert,
            tenant="search",
        ),
    )

    for scheme, engine in engines.items():
        report = engine.run(workload)
        print(f"=== {scheme} ({report.policy}) ===")
        print(
            f"  fleet: {report.slo_met}/{len(report.completed)} within SLO, "
            f"{report.shed} shed, {report.rebinds} rebinds, "
            f"fairness {report.fairness:.3f}"
        )
        for tenant, scope in report.per_tenant().items():
            print(
                f"  {tenant:>8}: completed {scope.total_completed:3d}  "
                f"shed {scope.shed:2d}  attainment {scope.slo_attainment:.0%}"
            )
        print()

    print(
        "The shared fleet wins because the router routes around the "
        "partition's forced placement: search requests that miss deadlines "
        "on the GPU class are served on the IPUs instead, and chat gives up "
        "only the slack above its fairness floor in exchange."
    )
    cache.close()


if __name__ == "__main__":
    main()
