"""Continuous-batching LLM serving: SLO-aware scheduling vs static batches.

Run with::

    python examples/continuous_llm.py

Replays one deterministic autoregressive workload — a mix of
deadline-carrying interactive requests and preemptible best-effort traffic,
with widely varying prompt lengths and output budgets — through both decode
engines on the same two-chip fleet.  The continuous engine admits requests
at decode-iteration boundaries (earliest deadline first), preempts
best-effort work when interactive traffic queues, sheds requests whose
projected completion already misses their deadline, and autoscales the
active fleet with queue depth; the static engine is the classic baseline
whose batches run until their longest member finishes.
"""

from __future__ import annotations

from repro.core.constraints import FAST_CONSTRAINTS
from repro.models import opt_decode_session
from repro.serving import (
    ContinuousEngine,
    DecodeModel,
    PlanCache,
    StaticEngine,
    decode_workload,
)


def main() -> None:
    model = DecodeModel(
        name="opt-125m",
        decode_builder=opt_decode_session("125m", num_layers=1, kv_len=256),
        max_batch_size=8,
        prefill_chunk=64,
    )
    # Both engines share one plan cache: each batch bucket compiles once and
    # every decode iteration afterwards is a cache hit.
    cache = PlanCache()
    continuous = ContinuousEngine(
        model, num_chips=2, constraints=FAST_CONSTRAINTS, plan_cache=cache
    )
    static = StaticEngine(
        model, num_chips=2, constraints=FAST_CONSTRAINTS, plan_cache=cache
    )

    # Offered load and deadlines in model-relative units: the batch-1
    # decode-iteration latency is the time unit (see fig27_continuous).
    unit = continuous.iteration_latency(1)
    mean_iterations = model.ideal_iterations(72, 26)  # mean prompt, mean output
    workload = decode_workload(
        model.name,
        num_requests=150,
        rate=10.0 * 2 / (mean_iterations * unit),
        seed=0,
        interactive_fraction=0.75,
        slo_seconds=lambda prompt, output: (
            1.5 * model.ideal_iterations(prompt, output) * unit
        ),
    )

    for engine in (static, continuous):
        report = engine.run(workload)
        print(report.summary())
        ttft = report.ttft_percentiles
        print(
            f"  goodput {report.goodput:.0f} req/s under SLO "
            f"(attainment {report.slo_attainment:.0%}), "
            f"TTFT p99 {ttft['p99'] * 1e3:.3f} ms\n"
        )

    print(
        "Continuous batching wins on goodput because retired slots are refilled "
        "at the next decode iteration and interactive requests are never stuck "
        "behind a long best-effort generation."
    )
    cache.close()


if __name__ == "__main__":
    main()
