"""Fleet-scale chaos: serving through a hardware-class outage.

Run with::

    python examples/fleet_chaos.py

Two tenants share a heterogeneous three-chip pool (two IPUs plus one
fig22-style GPU chip) through one :class:`FleetEngine`.  Mid-run the whole
IPU class — the chips every deadline actually prefers — dies at once (a
correlated :meth:`FaultSchedule.class_outage`, the
driver-rollout-gone-wrong shape) and restarts cold later, leaving only the
slow GPU replica alive.  The same workload and faults replay twice:

* **watchdog-only** routes with ``CostAwareRouter(health_aware=False)``:
  the router keeps queueing onto the dying replica and every recovery
  action waits for detection + failover, and
* **health-aware** (the default router) reads per-replica health from the
  fleet view: new arrivals route *around* the dead replica immediately,
  its requeued requests may migrate to another model's idle replica
  (charged their full re-prefill), per-tenant retry budgets stop requeue
  thrashing, and brownout admission sheds best-effort arrivals at the door
  while surviving capacity is below the watermark.

Both replays are pure virtual time, so each is exactly reproducible; the
goodput dip is measured by :func:`dip_and_recovery` scoped to the outage
window.  ``python -m repro.experiments fig31 --quick`` runs the full
three-tenant version of this comparison.
"""

from __future__ import annotations

from repro.core.constraints import FAST_CONSTRAINTS
from repro.hw.spec import A100_CHIP
from repro.models import build_bert, opt_decode_session
from repro.serving import (
    CostAwareRouter,
    DecodeModel,
    FaultSchedule,
    FleetEngine,
    PlanCache,
    TenantSpec,
    Watchdog,
    decode_workload,
    dip_and_recovery,
    merge_decode_workloads,
)


def main() -> None:
    opt = DecodeModel(
        name="opt-125m",
        decode_builder=opt_decode_session("125m", num_layers=1, kv_len=256),
        max_batch_size=8,
        prefill_chunk=64,
    )
    bert = DecodeModel(
        name="bert",
        decode_builder=lambda batch: build_bert(batch, seq_len=32, num_layers=1),
        max_batch_size=4,
        prefill_chunk=64,
    )
    tenants = [
        TenantSpec("chat", fairness_floor=0.4),
        TenantSpec("search", fairness_floor=0.5),
    ]
    cache = PlanCache()

    def make_engine(router: CostAwareRouter) -> FleetEngine:
        return FleetEngine(
            [opt, bert],
            tenants=tenants,
            num_chips=3,
            chip_classes={2: A100_CHIP},
            router=router,
            constraints=FAST_CONSTRAINTS,
            plan_cache=cache,
        )

    reference = make_engine(CostAwareRouter())
    unit_opt = reference.iteration_latency("opt-125m")
    unit_bert = reference.iteration_latency("bert")
    opt_iterations = opt.ideal_iterations(40, 26)
    bert_iterations = bert.ideal_iterations(40, 1)
    workload = merge_decode_workloads(
        decode_workload(
            "opt-125m",
            num_requests=50,
            rate=10.0 * 2 / (opt_iterations * unit_opt),
            seed=0,
            interactive_fraction=0.75,
            slo_seconds=lambda p, o: 1.5 * opt.ideal_iterations(p, o) * unit_opt,
            tenant="chat",
        ),
        decode_workload(
            "bert",
            num_requests=25,
            rate=1.0 / (bert_iterations * unit_bert),
            seed=1,
            output_tokens=(1, 1),
            slo_seconds=lambda p, o: 8.0 * bert.ideal_iterations(p, o) * unit_bert,
            tenant="search",
        ),
    )

    # Both IPU chips — the class every deadline actually prefers — die 40%
    # of the way through the arrivals and restart cold after 30% of the
    # serving window, leaving only the slow GPU replica alive.  The same
    # fault replays under both routers.
    span = max(request.arrival_time for request in workload)
    kill_at, downtime = 0.4 * span, 0.3 * span
    faults = FaultSchedule.class_outage(
        [0, 1], at=kill_at, downtime=downtime, cold_cache=True
    )
    watchdog = Watchdog(
        detection_delay=2 * unit_opt,
        degraded_shed_queue=4,
        retry_budget=3,
        brownout_watermark=0.9,
    )

    for scheme, router in [
        ("watchdog-only", CostAwareRouter(health_aware=False)),
        ("health-aware", CostAwareRouter()),
    ]:
        report = make_engine(router).run(workload, faults=faults, watchdog=watchdog)
        window = downtime / 5.0
        _, dip, recovery = dip_and_recovery(
            report.completed,
            fault_time=kill_at,
            window=window,
            horizon=kill_at + downtime + window,
        )
        stats = report.faults
        print(f"=== {scheme} ({report.policy}) ===")
        print(
            f"  fleet: {report.slo_met}/{len(report.completed)} within SLO, "
            f"{report.shed} shed, dip {dip:.0%}, recovery {recovery * 1e3:.2f} ms"
        )
        print(
            f"  chaos: {stats.chip_deaths} death(s), {stats.requeued} requeued, "
            f"{report.migrations} migrated, {stats.retry_drops} retry-dropped, "
            f"{stats.brownout_sheds} brownout-shed"
        )
        for tenant, scope in report.per_tenant().items():
            floor = next(t.fairness_floor for t in tenants if t.name == tenant)
            held = "held" if scope.slo_attainment >= floor else "VIOLATED"
            print(
                f"  {tenant:>8}: completed {scope.total_completed:3d}  "
                f"attainment {scope.slo_attainment:.0%} (floor {floor:.0%} {held})"
            )
        print()

    print(
        "The health-aware fleet serves more within SLO and recovers sooner "
        "from the same outage: arrivals route around the dead IPU replicas "
        "immediately, displaced requests migrate onto the surviving GPU "
        "replica (cross-model failover, charged their full re-prefill), and "
        "brownout admission spends the shrunken fleet on interactive "
        "traffic first — so every tenant's fairness floor holds."
    )
    cache.close()


if __name__ == "__main__":
    main()
