"""Defining a custom operator and exploring its compute-shift plan space.

Run with::

    python examples/custom_operator.py

Shows the lower-level API: build a tensor expression by hand, register a
custom cost function for it (the hook the paper exposes for vendor/custom
kernels), enumerate its Pareto-optimal compute-shift plans, and verify the
chosen plan's sub-tensor placement invariants with the rotation checker.
"""

from __future__ import annotations

from repro import IPU_MK2
from repro.core import IntraOpOptimizer, PlacementPlan, default_cost_model
from repro.ir import DType, Operator, TensorExpression, TensorRole, tensor


def build_custom_operator() -> Operator:
    """A fused "scale + matmul" operator written as a raw tensor expression."""
    expr = TensorExpression(
        op_type="scaled_matmul",
        axes={"m": 2048, "k": 512, "n": 512},
        inputs=(
            tensor("X", ["m", "k"], TensorRole.INPUT),
            tensor("W", ["k", "n"], TensorRole.WEIGHT),
            tensor("scale", ["n"], TensorRole.WEIGHT),
        ),
        output=tensor("Y", ["m", "n"], TensorRole.OUTPUT),
        flops_per_point=2.0,
        dtype=DType.FP16,
    )
    return Operator(name="fused_scale_matmul", expr=expr)


def main() -> None:
    operator = build_custom_operator()
    cost_model = default_cost_model(IPU_MK2)

    # Custom kernels can ship their own cost function (paper §4.3.1).
    cost_model.register_custom(
        "scaled_matmul",
        lambda shape, flops, nbytes: cost_model.compute_time("matmul", shape, flops, nbytes) * 1.05,
    )

    optimizer = IntraOpOptimizer(IPU_MK2, cost_model)
    plans = optimizer.pareto_plans(operator)
    stats = optimizer.search_space_stats(operator)

    print(f"Operator: {operator}")
    print(
        f"Search space: complete={stats.complete:.2e}, filtered={stats.filtered:.0f}, "
        f"Pareto-optimal={stats.optimized}\n"
    )
    print("Pareto frontier (memory-efficient -> latency-efficient):")
    for plan in plans:
        print(f"  {plan.describe()}")

    fastest = plans[-1]
    placement = PlacementPlan.build(operator.expr, fastest)
    print(f"\nFastest plan placement on {placement.num_cores} cores "
          f"verifies: {placement.verify()}")


if __name__ == "__main__":
    main()
